"""The sqlite run-table: an indexed store of every trial ever run.

The flat-JSON :class:`~repro.experiments.executor.ResultStore` stays the
executor's *resume* source of truth (it is what fingerprint-keyed caching
reads), but it answers "what ran last week" only by re-parsing whole files.
The run-table is the query side: every completed (or failed, or
quarantined) trial lands here as one row — indexed by experiment, trial
id, fingerprint, seed, wall time, and status, with the full TrialResult as
a JSON payload column — and summary questions (percentiles over any
metric, per-experiment counts, recent runs) become indexed SQL plus a
small amount of Python instead of directory scans.

A second table persists :class:`~repro.service.jobs.SweepJob` descriptors;
jobs still ``queued``/``running`` at startup are what the coordinator
re-queues after a crash. The jobs table also carries the submit
idempotency key, so a retried HTTP submit deduplicates even across a
coordinator restart.

Crash consistency (see DESIGN.md "Failure domains"):

* the connection runs in WAL mode with ``synchronous=NORMAL`` and a busy
  timeout, so a reader never blocks the writer and a power cut can lose at
  most the tail of the WAL, never corrupt committed pages;
* ``PRAGMA quick_check`` runs at open; a file that fails it is moved aside
  to ``<path>.corrupt-N`` (with its ``-wal``/``-shm`` sidecars) and a
  fresh table is built — ``rebuilt_from`` tells the coordinator to replay
  the flat ResultStores into it;
* every statement goes through :meth:`_exec`, which holds the RLock,
  fires the ``runtable.execute`` fault hook, and retries SQLITE_BUSY with
  exponential backoff (the sleep is injectable, so tests are instant).

sqlite is the right shape here: stdlib (no new deps), single-file, safe
across the coordinator's worker + HTTP threads (one connection behind a
lock), and indexed queries over ~millions of trial rows — while staying
trivially replaceable by a networked store behind the same method surface.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis import stats
from repro.errors import StaleTokenError
from repro.experiments.spec import TrialResult
from repro.service.jobs import QUEUED, RUNNING, SweepJob

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    experiment  TEXT NOT NULL,
    trial_id    TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    seed        INTEGER,
    wall_time   REAL,
    status      TEXT NOT NULL,
    job_id      TEXT,
    worker_id   TEXT,
    attempt     INTEGER,
    token       INTEGER,
    recorded_at REAL NOT NULL,
    payload     TEXT NOT NULL,
    PRIMARY KEY (experiment, trial_id, fingerprint)
);
CREATE INDEX IF NOT EXISTS idx_trials_experiment ON trials(experiment);
CREATE INDEX IF NOT EXISTS idx_trials_fingerprint ON trials(fingerprint);
CREATE INDEX IF NOT EXISTS idx_trials_seed ON trials(seed);
CREATE INDEX IF NOT EXISTS idx_trials_wall ON trials(wall_time);
CREATE INDEX IF NOT EXISTS idx_trials_status ON trials(status);
CREATE INDEX IF NOT EXISTS idx_trials_recorded ON trials(recorded_at);

CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    priority     INTEGER NOT NULL,
    state        TEXT NOT NULL,
    testbed_seed INTEGER,
    submitted_at REAL,
    started_at   REAL,
    finished_at  REAL,
    completed    INTEGER NOT NULL DEFAULT 0,
    failed       INTEGER NOT NULL DEFAULT 0,
    total        INTEGER NOT NULL,
    error        TEXT,
    wire         TEXT NOT NULL,
    idem_key     TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs(state);
"""

_TRIAL_COLUMNS = (
    "experiment", "trial_id", "fingerprint", "seed", "wall_time", "status",
    "job_id", "worker_id", "attempt", "token", "recorded_at",
)


class RunTable:
    """One sqlite file of trial rows + job descriptors.

    All methods are thread-safe: the coordinator's workers insert while the
    HTTP threads query, through one shared connection behind an RLock —
    every statement is issued inside :meth:`_exec`, never against the raw
    connection, so the audit surface for the locking discipline is one
    method.
    """

    #: SQLITE_BUSY retry schedule: attempts and base backoff (doubles).
    BUSY_ATTEMPTS = 5
    BUSY_BACKOFF_S = 0.05

    def __init__(
        self,
        path: str,
        sleep: Callable[[float], None] = time.sleep,
        fault_hook: Optional[Callable[..., Any]] = None,
    ):
        self.path = path
        self._sleep = sleep
        self.fault_hook = fault_hook
        self._lock = threading.RLock()
        #: Path the corrupt predecessor was quarantined to, or None. The
        #: coordinator checks this at startup and replays the flat stores.
        self.rebuilt_from: Optional[str] = None
        self._conn = self._open(path)
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            self._migrate_locked()

    # ------------------------------------------------------------------
    # Open / integrity / migration
    # ------------------------------------------------------------------
    def _open(self, path: str) -> sqlite3.Connection:
        """Connect with the WAL pragmas; quarantine-and-recreate a file
        that fails ``PRAGMA quick_check``."""
        try:
            conn = self._connect(path)
            row = conn.execute("PRAGMA quick_check").fetchone()
            if row is not None and str(row[0]).lower() == "ok":
                return conn
            conn.close()
        except sqlite3.DatabaseError:
            # Not even a sqlite file (truncated header, garbage bytes).
            pass
        self.rebuilt_from = self._quarantine_file(path)
        return self._connect(path)

    @staticmethod
    def _connect(path: str) -> sqlite3.Connection:
        conn = sqlite3.connect(path, check_same_thread=False)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=5000")
        return conn

    @staticmethod
    def _quarantine_file(path: str) -> str:
        """Move a corrupt db (and WAL/SHM sidecars) to ``.corrupt-N``.
        The evidence is preserved for post-mortem, never deleted."""
        n = 0
        while os.path.exists(f"{path}.corrupt-{n}"):
            n += 1
        target = f"{path}.corrupt-{n}"
        os.replace(path, target)
        for ext in ("-wal", "-shm"):
            if os.path.exists(path + ext):
                os.replace(path + ext, target + ext)
        return target

    def _migrate_locked(self) -> None:
        """Bring a pre-existing file up to the current schema (additive
        only). Caller holds the lock and an open transaction."""
        cols = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        if "idem_key" not in cols:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN idem_key TEXT")
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_jobs_idem ON jobs(idem_key)"
        )
        trial_cols = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(trials)")
        }
        for name, decl in (
            ("worker_id", "TEXT"),
            ("attempt", "INTEGER"),
            ("token", "INTEGER"),
        ):
            if name not in trial_cols:
                self._conn.execute(
                    f"ALTER TABLE trials ADD COLUMN {name} {decl}"
                )

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass  # best-effort: close() must succeed regardless
            self._conn.close()

    # ------------------------------------------------------------------
    # The single statement gateway
    # ------------------------------------------------------------------
    def _exec(self, fn: Callable[[sqlite3.Connection], Any]) -> Any:
        """Run ``fn(conn)`` under the lock, retrying SQLITE_BUSY.

        Busy/locked errors are transient by construction (another process
        holds the write lock briefly), so they are retried here with
        exponential backoff rather than surfacing to every caller. Any
        other OperationalError propagates. The fault hook fires inside the
        retry loop: an injected "database is locked" behaves exactly like
        a real one.
        """
        with self._lock:
            last: Optional[sqlite3.OperationalError] = None
            for attempt in range(self.BUSY_ATTEMPTS):
                try:
                    if self.fault_hook is not None:
                        self.fault_hook("runtable.execute", None)
                    return fn(self._conn)
                except sqlite3.OperationalError as exc:
                    text = str(exc).lower()
                    if "locked" not in text and "busy" not in text:
                        raise
                    last = exc
                    self._sleep(
                        min(self.BUSY_BACKOFF_S * (2 ** attempt), 0.5)
                    )
            assert last is not None
            raise last

    # ------------------------------------------------------------------
    # Trial rows
    # ------------------------------------------------------------------
    def record_trial(
        self,
        experiment: str,
        result: TrialResult,
        seed: Optional[int] = None,
        wall_time: Optional[float] = None,
        status: str = "ok",
        job_id: Optional[str] = None,
        recorded_at: Optional[float] = None,
        replace: bool = True,
        worker_id: Optional[str] = None,
        attempt: Optional[int] = None,
        token: Optional[int] = None,
    ) -> bool:
        """Insert one trial row. With ``replace=False`` an existing
        (experiment, trial_id, fingerprint) row is left untouched — that is
        what keeps a crash-resumed job from overwriting the original rows'
        wall times with cache-hit nulls.

        ``worker_id``/``attempt``/``token`` stamp which lease produced the
        row. A non-None ``token`` additionally *fences* the write: if the
        existing row for the same key carries a strictly larger token, the
        caller's lease was reaped and re-granted since it ran the trial —
        :class:`~repro.errors.StaleTokenError` is raised and nothing is
        written, whatever ``replace`` says. A fenced write that finds an
        existing ``ok`` row returns False (idempotent duplicate) instead of
        overwriting it. Returns True when a row was written."""
        verb = "INSERT OR REPLACE" if replace else "INSERT OR IGNORE"
        row = (
            experiment,
            result.trial_id,
            result.fingerprint,
            seed,
            wall_time,
            status,
            job_id,
            worker_id,
            attempt,
            token,
            time.time() if recorded_at is None else recorded_at,
            json.dumps(result.to_json()),
        )

        def _do(conn: sqlite3.Connection) -> bool:
            with conn:
                if token is not None:
                    existing = conn.execute(
                        "SELECT status, token FROM trials WHERE "
                        "experiment = ? AND trial_id = ? AND fingerprint = ?",
                        (experiment, result.trial_id, result.fingerprint),
                    ).fetchone()
                    if existing is not None:
                        held = existing["token"]
                        if held is not None and int(held) > token:
                            raise StaleTokenError(
                                f"trial {result.trial_id!r} already recorded "
                                f"under fencing token {held}; rejecting "
                                f"upload with stale token {token}"
                            )
                        if existing["status"] == "ok":
                            return False  # idempotent duplicate
                cur = conn.execute(
                    f"{verb} INTO trials (experiment, trial_id, fingerprint, "
                    f"seed, wall_time, status, job_id, worker_id, attempt, "
                    f"token, recorded_at, payload) "
                    f"VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )
                return cur.rowcount > 0

        return bool(self._exec(_do))

    def record_failure(
        self,
        experiment: str,
        trial_id: str,
        fingerprint: str,
        error: str,
        seed: Optional[int] = None,
        job_id: Optional[str] = None,
        worker_id: Optional[str] = None,
        attempt: Optional[int] = None,
        token: Optional[int] = None,
    ) -> None:
        """A trial that exhausted its retries still gets a row — "what
        failed last week" is as much a run-table question as "what ran".

        A failure never replaces an existing ``ok`` row for the same
        (experiment, trial_id, fingerprint): resubmitting a sweep as a new
        job re-executes its trials, and a transient flake must not erase a
        previously recorded TrialResult from the query side."""
        self._record_bad(
            experiment, trial_id, fingerprint, "failed",
            {"error": error}, seed, job_id, worker_id, attempt, token,
        )

    def record_quarantine(
        self,
        experiment: str,
        trial_id: str,
        fingerprint: str,
        error: str,
        error_class: str,
        seed: Optional[int] = None,
        job_id: Optional[str] = None,
        worker_id: Optional[str] = None,
        attempt: Optional[int] = None,
        token: Optional[int] = None,
    ) -> None:
        """A trial the coordinator gave up on: permanent failure, hung
        past its watchdog, or killed its worker twice. The error *class*
        is recorded alongside the message so "what kinds of trials get
        quarantined" is one GROUP BY away. Like failures, a quarantine
        never overwrites an ``ok`` row."""
        self._record_bad(
            experiment, trial_id, fingerprint, "quarantined",
            {"error": error, "error_class": error_class}, seed, job_id,
            worker_id, attempt, token,
        )

    def _record_bad(
        self,
        experiment: str,
        trial_id: str,
        fingerprint: str,
        status: str,
        payload: dict,
        seed: Optional[int],
        job_id: Optional[str],
        worker_id: Optional[str] = None,
        attempt: Optional[int] = None,
        token: Optional[int] = None,
    ) -> None:
        def _do(conn: sqlite3.Connection) -> None:
            with conn:
                row = conn.execute(
                    "SELECT status, token FROM trials WHERE experiment = ? "
                    "AND trial_id = ? AND fingerprint = ?",
                    (experiment, trial_id, fingerprint),
                ).fetchone()
                if row is not None:
                    if row["status"] == "ok":
                        return
                    held = row["token"]
                    if (
                        token is not None
                        and held is not None
                        and int(held) > token
                    ):
                        raise StaleTokenError(
                            f"trial {trial_id!r} already recorded under "
                            f"fencing token {held}; rejecting {status} "
                            f"write with stale token {token}"
                        )
                conn.execute(
                    "INSERT OR REPLACE INTO trials (experiment, trial_id, "
                    "fingerprint, seed, wall_time, status, job_id, "
                    "worker_id, attempt, token, recorded_at, payload) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        experiment, trial_id, fingerprint, seed, None,
                        status, job_id, worker_id, attempt, token,
                        time.time(), json.dumps(payload),
                    ),
                )

        self._exec(_do)

    def prune(
        self,
        max_age_s: Optional[float] = None,
        max_keep: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Retention: delete old trial rows, then checkpoint the WAL.

        ``max_age_s`` drops rows recorded longer ago than that; ``max_keep``
        keeps only the newest N rows (both may combine). Rows belonging to a
        still-open job (``queued``/``running`` in the jobs table) are never
        pruned, whatever their age — a crash-resume must always find its
        predecessor's rows. After compaction the WAL is checkpointed with
        TRUNCATE so the reclaimed space actually leaves the disk instead of
        sitting in the sidecar file. Returns the number of rows deleted.
        """
        if max_age_s is None and max_keep is None:
            return 0
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        if max_keep is not None and max_keep < 0:
            raise ValueError(f"max_keep must be >= 0, got {max_keep}")
        cutoff = (
            None
            if max_age_s is None
            else (time.time() if now is None else now) - max_age_s
        )
        open_clause = (
            "(job_id IS NULL OR job_id NOT IN "
            "(SELECT job_id FROM jobs WHERE state IN (?, ?)))"
        )

        def _do(conn: sqlite3.Connection) -> int:
            deleted = 0
            with conn:
                if cutoff is not None:
                    cur = conn.execute(
                        f"DELETE FROM trials WHERE recorded_at < ? "
                        f"AND {open_clause}",
                        (cutoff, QUEUED, RUNNING),
                    )
                    deleted += cur.rowcount
                if max_keep is not None:
                    cur = conn.execute(
                        f"DELETE FROM trials WHERE {open_clause} "
                        f"AND rowid NOT IN (SELECT rowid FROM trials "
                        f"ORDER BY recorded_at DESC, rowid DESC LIMIT ?)",
                        (QUEUED, RUNNING, int(max_keep)),
                    )
                    deleted += cur.rowcount
            return deleted

        deleted = int(self._exec(_do))
        self._exec(
            lambda conn: conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        )
        return deleted

    def trial_status(
        self, experiment: str, trial_id: str, fingerprint: str
    ) -> Optional[str]:
        """The recorded status of one trial (None if never recorded) —
        what lets a resumed job skip a trial already quarantined by a
        previous incarnation instead of hanging on it again."""
        row = self._exec(
            lambda conn: conn.execute(
                "SELECT status FROM trials WHERE experiment = ? AND "
                "trial_id = ? AND fingerprint = ?",
                (experiment, trial_id, fingerprint),
            ).fetchone()
        )
        return None if row is None else str(row["status"])

    def trial_count(
        self,
        experiment: Optional[str] = None,
        status: Optional[str] = None,
    ) -> int:
        sql = "SELECT COUNT(*) FROM trials"
        where, args = self._where(experiment=experiment, status=status)
        (n,) = self._exec(
            lambda conn: conn.execute(sql + where, args).fetchone()
        )
        return int(n)

    def max_token(self) -> int:
        """The largest fencing token any persisted row carries (0 when no
        fenced row exists). The queue's token counter is re-seeded from
        this at coordinator startup so a restart can never mint a token
        the table has already seen — see
        :meth:`~repro.service.queue.InMemoryJobQueue.advance_tokens`."""
        (m,) = self._exec(
            lambda conn: conn.execute(
                "SELECT MAX(token) FROM trials"
            ).fetchone()
        )
        return 0 if m is None else int(m)

    def counts_by_experiment(self) -> Dict[str, int]:
        rows = self._exec(
            lambda conn: conn.execute(
                "SELECT experiment, COUNT(*) AS n FROM trials "
                "GROUP BY experiment ORDER BY experiment"
            ).fetchall()
        )
        return {row["experiment"]: int(row["n"]) for row in rows}

    def recent_runs(
        self,
        limit: int = 20,
        experiment: Optional[str] = None,
        status: Optional[str] = None,
        with_payload: bool = False,
    ) -> List[dict]:
        """Newest-first trial rows (metadata only unless asked)."""
        where, args = self._where(experiment=experiment, status=status)
        cols = ", ".join(_TRIAL_COLUMNS) + (", payload" if with_payload else "")
        rows = self._exec(
            lambda conn: conn.execute(
                f"SELECT {cols} FROM trials{where} "
                f"ORDER BY recorded_at DESC, trial_id DESC LIMIT ?",
                args + [int(limit)],
            ).fetchall()
        )
        out = []
        for row in rows:
            d = {k: row[k] for k in _TRIAL_COLUMNS}
            if with_payload:
                d["payload"] = json.loads(row["payload"])
            out.append(d)
        return out

    def results(self, experiment: str) -> List[TrialResult]:
        """Every successful trial of an experiment, insertion-ordered.
        Only ``ok`` rows carry a TrialResult payload — failed and
        quarantined rows hold error records, not results."""
        rows = self._exec(
            lambda conn: conn.execute(
                "SELECT payload FROM trials WHERE experiment = ? AND "
                "status = 'ok' ORDER BY rowid",
                (experiment,),
            ).fetchall()
        )
        return [TrialResult.from_json(json.loads(r["payload"])) for r in rows]

    # ------------------------------------------------------------------
    # Summary queries
    # ------------------------------------------------------------------
    def metric_values(self, experiment: str, metric: str) -> List[float]:
        """Extract one numeric metric from every successful trial.

        ``metric`` addresses the payload:

        * ``total_mbps`` — sum of the trial's per-flow throughputs,
        * ``mbps:S-D`` — one flow's throughput (source S, destination D),
        * anything else — a numeric entry of the trial's ``metrics`` dict.

        Trials lacking the metric are skipped (not an error): experiments
        mix protocols, and e.g. ``concurrency`` exists only on CMAP trials.
        """
        values: List[float] = []
        for res in self.results(experiment):
            value = _extract_metric(res, metric)
            if value is not None:
                values.append(value)
        return values

    def percentiles(
        self, experiment: str, metric: str, qs: Sequence[float]
    ) -> Dict[float, float]:
        """Percentiles of a metric across an experiment's trials, computed
        with the same :func:`repro.analysis.stats.percentile` the figure
        reducers use — so the service's summaries are definitionally
        consistent with the in-process analysis path."""
        values = self.metric_values(experiment, metric)
        if not values:
            return {}
        return {float(q): stats.percentile(values, q) for q in qs}

    def summary(self, experiment: str, metric: str) -> Optional[dict]:
        """count/mean/std/median/p10..p90 of a metric (None if no data)."""
        values = self.metric_values(experiment, metric)
        if not values:
            return None
        s = stats.summarize(values)
        return {
            "count": s.count, "mean": s.mean, "std": s.std,
            "median": s.median, "p10": s.p10, "p25": s.p25,
            "p75": s.p75, "p90": s.p90,
        }

    # ------------------------------------------------------------------
    # Jobs table
    # ------------------------------------------------------------------
    def upsert_job(self, job: SweepJob) -> None:
        row = (
            job.job_id, job.name, job.priority, job.state,
            job.testbed_seed, job.submitted_at, job.started_at,
            job.finished_at, job.completed, job.failed, job.total,
            job.error, json.dumps(job.to_wire()), job.idempotency_key,
        )

        def _do(conn: sqlite3.Connection) -> None:
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO jobs (job_id, name, priority, "
                    "state, testbed_seed, submitted_at, started_at, "
                    "finished_at, completed, failed, total, error, wire, "
                    "idem_key) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    row,
                )

        self._exec(_do)

    def get_job(self, job_id: str) -> Optional[SweepJob]:
        row = self._exec(
            lambda conn: conn.execute(
                "SELECT wire FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        )
        if row is None:
            return None
        return SweepJob.from_wire(json.loads(row["wire"]))

    def job_by_idempotency_key(self, key: str) -> Optional[SweepJob]:
        """The earliest job submitted under ``key`` (None if unseen) — the
        persistent half of submit dedup, so a client retrying a submit
        whose response was lost gets the original job back even across a
        coordinator restart."""
        row = self._exec(
            lambda conn: conn.execute(
                "SELECT wire FROM jobs WHERE idem_key = ? "
                "ORDER BY submitted_at, job_id LIMIT 1",
                (key,),
            ).fetchone()
        )
        if row is None:
            return None
        return SweepJob.from_wire(json.loads(row["wire"]))

    def list_jobs(
        self, limit: int = 50, states: Optional[Sequence[str]] = None
    ) -> List[SweepJob]:
        sql = "SELECT wire FROM jobs"
        args: List[Any] = []
        if states:
            sql += " WHERE state IN (%s)" % ",".join("?" * len(states))
            args.extend(states)
        sql += " ORDER BY submitted_at DESC LIMIT ?"
        args.append(int(limit))
        rows = self._exec(lambda conn: conn.execute(sql, args).fetchall())
        return [SweepJob.from_wire(json.loads(r["wire"])) for r in rows]

    def open_jobs(self) -> List[SweepJob]:
        """Jobs a previous coordinator left queued or running — the
        crash-resume work list, oldest first."""
        jobs = self.list_jobs(limit=10_000, states=(QUEUED, RUNNING))
        return sorted(jobs, key=lambda j: j.submitted_at)

    # ------------------------------------------------------------------
    # Migration from flat-file stores
    # ------------------------------------------------------------------
    def ingest_store(
        self,
        store,
        experiment: str,
        job_id: Optional[str] = None,
        replace: bool = False,
    ) -> int:
        """Import a :class:`~repro.experiments.executor.ResultStore`'s
        cached results as run-table rows (the flat-JSON -> sqlite migration
        path; also reachable as ``store.migrate_to(runtable, ...)``)."""
        n = 0
        for result in store.results():
            self.record_trial(
                experiment,
                result,
                seed=store.testbed_seed,
                job_id=job_id,
                replace=replace,
            )
            n += 1
        return n

    def rebuild_from_stores(self, stores_dir: str) -> int:
        """Repopulate trial rows from the flat ResultStores under
        ``stores_dir`` — the recovery path after a corrupt db was
        quarantined at open. Stores that fail to parse, and stores written
        before the experiment name was persisted, are skipped (the flat
        files stay authoritative either way). Returns rows ingested."""
        from repro.experiments.executor import ResultStore

        n = 0
        if not os.path.isdir(stores_dir):
            return n
        for fname in sorted(os.listdir(stores_dir)):
            if not fname.endswith(".json"):
                continue
            try:
                store = ResultStore(os.path.join(stores_dir, fname))
            except (OSError, ValueError, KeyError):
                continue
            if not store.experiment:
                continue
            n += self.ingest_store(store, store.experiment, replace=False)
        return n

    # ------------------------------------------------------------------
    @staticmethod
    def _where(**filters) -> "tuple[str, List[Any]]":
        clauses, args = [], []
        for column, value in filters.items():
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        return (" WHERE " + " AND ".join(clauses)) if clauses else "", args


def _extract_metric(res: TrialResult, metric: str) -> Optional[float]:
    if metric == "total_mbps":
        return float(sum(res.flow_mbps.values())) if res.flow_mbps else None
    if metric.startswith("mbps:"):
        try:
            s, d = metric[len("mbps:"):].split("-")
            return float(res.flow_mbps[(int(s), int(d))])
        except (ValueError, KeyError):
            return None
    value = res.metrics.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)
