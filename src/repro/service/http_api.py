"""HTTP API + client for the sweep service (stdlib only).

Server: a :class:`ThreadingHTTPServer` over a :class:`Coordinator`.

===============================  =========================================
``GET  /healthz``                liveness + queue depth
``POST /jobs``                   submit a sweep (wire spec or named builder)
``GET  /jobs``                   newest-first job listing
``GET  /jobs/<id>``              progress; ``?wait=S&cursor=N`` long-polls
``POST /jobs/<id>/cancel``       cancel (honored at the next trial boundary)
``GET  /runs``                   recent run-table rows + per-experiment counts
``GET  /runs/summary``           percentiles/summary of a metric
``POST /runs/prune``             retention: drop old rows, checkpoint WAL
``GET  /workers``                remote worker registry snapshot
``POST /workers/register``       remote worker handshake
``POST /workers/lease``          lease one job + fencing token to a worker
``POST /workers/heartbeat``      extend a remote lease
``POST /workers/upload``         idempotent, fenced TrialResult upload
``POST /workers/quarantine``     worker gave up on one trial
``POST /workers/ack``            job finished; server computes final state
``POST /workers/requeue``        graceful give-back (worker draining)
===============================  =========================================

The worker verbs (see ``repro.service.worker``) carry ``worker_id`` and
the lease's **fencing token** in every body; a stale lease maps to HTTP
409 with ``code`` ``lease_lost`` or ``stale_token`` — the reply that
tells a zombie worker to back away.

Submit bodies (JSON)::

    {"builder": "fig12", "scale": "smoke", "seed": 1,
     "params": {...}, "priority": 0}

resolves a name in :data:`repro.experiments.runners.SWEEP_BUILDERS`
against the server's (cached) testbed, while ::

    {"experiment": {"name": ..., "trials": [...]},
     "testbed_seed": 1, "priority": 0}

carries a full wire-format ExperimentSpec (see ``TrialSpec.to_wire``) —
the round trip is fingerprint-identical, so results are bit-identical to
running the same spec in-process and land in the same resume caches.

Client: :class:`ServiceClient` wraps the endpoints with ``urllib`` —
the CLI's ``submit``/``tail``/``runs`` targets and the CI smoke check
drive the service exclusively through it.
"""

from __future__ import annotations

import json
import random
import socketserver
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import StaleTokenError
from repro.experiments.runners import SWEEP_BUILDERS, ExperimentScale
from repro.experiments.spec import TrialResult, experiment_from_wire
from repro.service.coordinator import Coordinator
from repro.service.jobs import TERMINAL_STATES, new_job
from repro.service.queue import LeaseLost

#: Cap on ?wait= so a stalled client cannot pin a server thread forever.
MAX_LONG_POLL_S = 60.0

#: Largest request body accepted (413 beyond this). Generous for wire
#: sweeps — a trial spec is ~200 bytes, so this clears ~40k trials — but
#: finite, so a hostile Content-Length cannot make a handler allocate
#: unbounded memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-connection socket timeout: a client that stops sending mid-request
#: (or never sends one) frees its handler thread after this, instead of
#: pinning it forever.
SOCKET_TIMEOUT_S = 65.0


class ApiError(Exception):
    """Maps to an HTTP error status.

    ``code`` is the machine-readable error tag the server attaches to
    lease-protocol conflicts (``lease_lost``, ``stale_token``): the worker
    keys its back-away decision on it instead of parsing message text."""

    def __init__(self, status: int, message: str, code: Optional[str] = None):
        super().__init__(message)
        self.status = status
        self.code = code


def _query_num(query: Dict[str, str], key: str, default, parse):
    """Parse a numeric query param, mapping garbage to a 400 (not a 500)."""
    raw = query.get(key)
    if raw is None:
        return default
    try:
        return parse(raw)
    except ValueError:
        raise ApiError(
            400, f"query param {key}={raw!r} is not a valid {parse.__name__}"
        )


class _Handler(BaseHTTPRequestHandler):
    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: StreamRequestHandler applies this to the connection socket: a hung
    #: or half-dead client raises timeout instead of pinning the thread.
    timeout = SOCKET_TIMEOUT_S

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, fmt, *args) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        url = urllib.parse.urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in urllib.parse.parse_qs(url.query).items()}
        try:
            payload = self._route(method, parts, query)
        except ApiError as exc:
            self._send(exc.status, {"error": str(exc)})
        except LeaseLost as exc:
            # 409: the caller's lease was reaped (and possibly re-granted).
            # ``code`` lets a worker distinguish "back away" from a plain
            # error without parsing the message text.
            self._send(409, {"error": str(exc), "code": "lease_lost"})
        except StaleTokenError as exc:
            self._send(409, {"error": str(exc), "code": "stale_token"})
        except TimeoutError:
            # The connection socket timed out mid-read: the client went
            # away or stalled. Drop the connection; there is nobody to
            # answer, and trying to would just raise again.
            self.close_connection = True
        except Exception as exc:  # defensive: a handler bug is a 500, not EOF
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send(200 if method == "GET" else 201, payload)

    def _route(self, method: str, parts: List[str], query: Dict[str, str]) -> dict:
        co = self.server.coordinator
        if method == "GET" and parts == ["healthz"]:
            return {"ok": True, "queued": co.queue.queued_count()}
        if parts[:1] == ["jobs"]:
            return self._route_jobs(method, parts, query, co)
        if parts[:1] == ["runs"]:
            return self._route_runs(method, parts, query, co)
        if parts[:1] == ["workers"]:
            return self._route_workers(method, parts, co)
        raise ApiError(404, f"no route {method} /{'/'.join(parts)}")

    def _route_jobs(self, method, parts, query, co: Coordinator) -> dict:
        if method == "GET" and len(parts) == 1:
            return {"jobs": co.list_jobs(limit=_query_num(query, "limit", 50, int))}
        if method == "POST" and len(parts) == 1:
            return self._submit(co)
        if method == "GET" and len(parts) == 2:
            wait = min(_query_num(query, "wait", 0.0, float), MAX_LONG_POLL_S)
            cursor = _query_num(query, "cursor", None, int)
            progress = co.wait(
                parts[1],
                cursor=cursor if wait > 0 else None,
                timeout=wait if wait > 0 else None,
            )
            if progress is None:
                raise ApiError(404, f"unknown job {parts[1]!r}")
            return progress
        if method == "POST" and len(parts) == 3 and parts[2] == "cancel":
            job_id = parts[1]
            accepted = co.cancel(job_id)
            progress = co.job_progress(job_id)
            if progress is None:
                raise ApiError(404, f"unknown job {job_id!r}")
            return {"cancelled": accepted, "state": progress["state"]}
        raise ApiError(404, f"no route {method} /{'/'.join(parts)}")

    def _route_runs(self, method, parts, query, co: Coordinator) -> dict:
        if method == "POST" and parts[1:] == ["prune"]:
            body = self._read_body()
            max_age_s = body.get("max_age_s")
            max_keep = body.get("max_keep")
            try:
                deleted = co.runtable.prune(
                    max_age_s=None if max_age_s is None else float(max_age_s),
                    max_keep=None if max_keep is None else int(max_keep),
                )
            except (TypeError, ValueError) as exc:
                raise ApiError(400, f"bad prune bounds: {exc}")
            return {"deleted": deleted}
        if method != "GET":
            raise ApiError(405, "run-table endpoints are read-only "
                                "(except POST /runs/prune)")
        table = co.runtable
        experiment = query.get("experiment")
        if len(parts) == 1:
            return {
                "runs": table.recent_runs(
                    limit=_query_num(query, "limit", 20, int),
                    experiment=experiment,
                    status=query.get("status"),
                    with_payload=query.get("payload") == "1",
                ),
                "counts": table.counts_by_experiment(),
            }
        if parts[1] == "summary":
            if not experiment or "metric" not in query:
                raise ApiError(400, "summary needs ?experiment= and ?metric=")
            metric = query["metric"]
            raw_qs = query.get("q", "10,50,90")
            try:
                qs = [float(q) for q in raw_qs.split(",") if q]
            except ValueError:
                raise ApiError(400, f"query param q={raw_qs!r} is not a "
                                    f"comma-separated list of percentiles")
            return {
                "experiment": experiment,
                "metric": metric,
                "count": len(table.metric_values(experiment, metric)),
                "percentiles": {
                    str(q): v
                    for q, v in table.percentiles(experiment, metric, qs).items()
                },
                "summary": table.summary(experiment, metric),
            }
        raise ApiError(404, f"no route GET /{'/'.join(parts)}")

    # ------------------------------------------------------------------
    def _route_workers(self, method, parts, co: Coordinator) -> dict:
        if method == "GET" and len(parts) == 1:
            return {"workers": co.remote_workers()}
        if method != "POST" or len(parts) != 2:
            raise ApiError(404, f"no route {method} /{'/'.join(parts)}")
        verb = parts[1]
        body = self._read_body()
        worker_id = body.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise ApiError(400, "body needs a non-empty 'worker_id'")

        if verb == "register":
            return co.register_worker(worker_id)

        if verb == "lease":
            timeout = min(
                float(body.get("timeout", 0.0) or 0.0), MAX_LONG_POLL_S
            )
            leased = co.lease_for_remote(worker_id, timeout=timeout)
            if leased is None:
                return {"job": None}
            return {
                "job": leased["job"].to_wire(),
                "token": leased["token"],
                "pending": [t.to_wire() for t in leased["pending"]],
            }

        # Every verb below acts on an existing lease: job_id + token.
        job_id = body.get("job_id")
        token = body.get("token")
        if not isinstance(job_id, str) or not job_id:
            raise ApiError(400, "body needs a non-empty 'job_id'")
        if not isinstance(token, int):
            raise ApiError(400, "body needs an integer fencing 'token'")

        if verb == "heartbeat":
            co.remote_heartbeat(job_id, worker_id, token)
            return {"ok": True}
        if verb == "upload":
            try:
                result = TrialResult.from_json(body["result"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ApiError(400, f"bad wire TrialResult: {exc}")
            wall = body.get("wall")
            recorded = co.record_remote_result(
                job_id, worker_id, token, result,
                wall=None if wall is None else float(wall),
            )
            return {"recorded": recorded}
        if verb == "quarantine":
            try:
                trial_id = str(body["trial_id"])
                fingerprint = str(body["fingerprint"])
                error = str(body["error"])
                error_class_name = str(body.get("error_class", "RuntimeError"))
            except KeyError as exc:
                raise ApiError(400, f"quarantine body missing {exc}")
            co.record_remote_quarantine(
                job_id, worker_id, token, trial_id, fingerprint,
                error, error_class_name,
            )
            return {"ok": True}
        if verb == "ack":
            return co.remote_ack(job_id, worker_id, token)
        if verb == "requeue":
            co.remote_requeue(job_id, worker_id, token)
            return {"ok": True}
        raise ApiError(404, f"no worker verb {verb!r}")

    # ------------------------------------------------------------------
    def _read_body(self) -> dict:
        """Read and parse the JSON request body, bounded by
        :data:`MAX_BODY_BYTES` (413 beyond — before reading a byte of an
        oversized payload, so the allocation never happens)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ApiError(400, "bad Content-Length header")
        if length < 0:
            # rfile.read(-1) would block until EOF/socket timeout, pinning
            # this handler thread for a malicious or broken client.
            raise ApiError(400, "bad Content-Length header")
        if length > MAX_BODY_BYTES:
            # The body stays unread, so the connection cannot be reused
            # for a next request — close it after the 413 goes out.
            self.close_connection = True
            raise ApiError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"bad JSON body: {exc}")
        if not isinstance(body, dict):
            raise ApiError(400, "JSON body must be an object")
        return body

    # ------------------------------------------------------------------
    def _submit(self, co: Coordinator) -> dict:
        body = self._read_body()
        try:
            priority = int(body.get("priority", 0))
            seed = int(body.get("seed", body.get("testbed_seed", 1)))
        except (TypeError, ValueError) as exc:
            raise ApiError(400, f"bad priority/seed: {exc}")
        if "builder" in body:
            name = body["builder"]
            builder = SWEEP_BUILDERS.get(name)
            if builder is None:
                raise ApiError(
                    400,
                    f"unknown builder {name!r}; registered: "
                    f"{sorted(SWEEP_BUILDERS)}",
                )
            try:
                scale = ExperimentScale.preset(body.get("scale", "smoke"))
            except KeyError as exc:
                raise ApiError(400, str(exc.args[0]))
            params = body.get("params", {})
            try:
                spec = builder(co.testbed(seed), scale=scale, seed=seed, **params)
            except (TypeError, KeyError, ValueError) as exc:
                raise ApiError(400, f"builder {name!r} rejected params: {exc}")
        elif "experiment" in body:
            try:
                spec = experiment_from_wire(body["experiment"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ApiError(400, f"bad wire experiment: {exc}")
        else:
            raise ApiError(400, "body needs 'builder' or 'experiment'")
        idem_key = body.get("idempotency_key")
        if idem_key is not None and (
            not isinstance(idem_key, str) or not idem_key
            or len(idem_key) > 128
        ):
            raise ApiError(400, "idempotency_key must be a short string")
        job = new_job(spec.name, list(spec.trials), priority=priority,
                      testbed_seed=seed, idempotency_key=idem_key)
        granted = co.submit(job)
        if granted != job.job_id:
            # A previous submit with the same key already created the job
            # (this request is a client retry whose first response was
            # lost) — hand the original back instead of a duplicate.
            return {"job_id": granted, "name": job.name,
                    "trials": job.total, "deduplicated": True}
        return {"job_id": job.job_id, "name": job.name,
                "trials": job.total, "deduplicated": False}

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # Long-polls pin threads; don't let a burst of them refuse new sockets.
    request_queue_size = 32

    def __init__(self, addr, coordinator: Coordinator, verbose: bool = False):
        self.coordinator = coordinator
        self.verbose = verbose
        super().__init__(addr, _Handler)


def make_server(
    coordinator: Coordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (port 0 = ephemeral; see ``server.server_address``) but do not
    serve — call ``serve_forever()`` or :func:`serve_in_thread`."""
    return ServiceHTTPServer((host, port), coordinator, verbose=verbose)


def serve_in_thread(server: socketserver.BaseServer) -> threading.Thread:
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


# ======================================================================
# Client
# ======================================================================
class ServiceClient:
    """Thin urllib client for the endpoints above.

    ``base_url`` like ``http://127.0.0.1:8642``. Raises :class:`ApiError`
    with the server's message on any non-2xx response.

    Transport failures (connection refused/reset, timeouts, truncated
    responses) retry up to ``retries`` times with jittered exponential
    backoff — but only for *idempotent* requests: GETs always are, and
    submits are made so by a client-minted ``idempotency_key`` that the
    coordinator deduplicates on, which is what makes "retry a submit
    whose response was lost" safe. :class:`ApiError` (the server answered
    with an error) never retries. ``retry_seed`` pins the jitter and
    ``sleep`` is injectable, so retry tests are deterministic and instant;
    ``fault_hook`` fires site ``client.request`` per attempt (actions
    ``drop`` — fail before the bytes leave — and ``truncate`` — the
    server processes the request but the response is lost).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.2,
        retry_seed: Optional[int] = None,
        fault_hook: Optional[Callable[..., Any]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.fault_hook = fault_hook
        self._sleep = sleep
        self._rng = random.Random(retry_seed)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit_builder(
        self,
        builder: str,
        scale: str = "smoke",
        seed: int = 1,
        priority: int = 0,
        params: Optional[Dict[str, Any]] = None,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        return self._request("POST", "/jobs", {
            "builder": builder, "scale": scale, "seed": seed,
            "priority": priority, "params": params or {},
            "idempotency_key": idempotency_key or uuid.uuid4().hex,
        }, idempotent=True)

    def submit_experiment(
        self,
        wire: dict,
        testbed_seed: int = 1,
        priority: int = 0,
        idempotency_key: Optional[str] = None,
    ) -> dict:
        return self._request("POST", "/jobs", {
            "experiment": wire, "testbed_seed": testbed_seed,
            "priority": priority,
            "idempotency_key": idempotency_key or uuid.uuid4().hex,
        }, idempotent=True)

    def jobs(self, limit: int = 50) -> List[dict]:
        return self._request("GET", f"/jobs?limit={limit}")["jobs"]

    def job(
        self,
        job_id: str,
        wait: Optional[float] = None,
        cursor: Optional[int] = None,
    ) -> dict:
        query = {}
        if wait is not None:
            query["wait"] = wait
        if cursor is not None:
            query["cursor"] = cursor
        suffix = f"?{urllib.parse.urlencode(query)}" if query else ""
        return self._request(
            "GET", f"/jobs/{job_id}{suffix}",
            timeout=self.timeout + (wait or 0),
        )

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel", {})

    def tail(self, job_id: str, wait: float = 10.0) -> Iterator[dict]:
        """Long-poll a job to completion, yielding each progress change.
        The final yield is the terminal progress dict."""
        cursor = -1
        while True:
            progress = self.job(job_id, wait=wait, cursor=max(cursor, 0))
            yield progress
            if progress["state"] in TERMINAL_STATES:
                return
            cursor = (progress["completed"] + progress["failed"]
                      + progress.get("quarantined", 0))

    def runs(
        self,
        experiment: Optional[str] = None,
        limit: int = 20,
        status: Optional[str] = None,
        with_payload: bool = False,
    ) -> dict:
        query = {"limit": limit}
        if experiment:
            query["experiment"] = experiment
        if status:
            query["status"] = status
        if with_payload:
            query["payload"] = 1
        return self._request("GET", f"/runs?{urllib.parse.urlencode(query)}")

    # ------------------------------------------------------------------
    # Worker verbs (used by repro.service.worker; retry policy per verb:
    # register/heartbeat/upload/requeue are server-side idempotent — the
    # registry upserts, extend re-extends, upload dedups by fingerprint
    # under the fencing token, requeue's replay just raises 409 — so the
    # transport may retry them. A lease retry could grant a second job,
    # so the worker polls again instead.)
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str) -> dict:
        return self._request("POST", "/workers/register",
                             {"worker_id": worker_id}, idempotent=True)

    def workers(self) -> List[dict]:
        return self._request("GET", "/workers")["workers"]

    def lease_job(self, worker_id: str, timeout: float = 0.0) -> dict:
        return self._request(
            "POST", "/workers/lease",
            {"worker_id": worker_id, "timeout": timeout},
            timeout=self.timeout + timeout,
        )

    def heartbeat(self, job_id: str, worker_id: str, token: int) -> dict:
        return self._request(
            "POST", "/workers/heartbeat",
            {"job_id": job_id, "worker_id": worker_id, "token": token},
            idempotent=True,
        )

    def upload_result(
        self,
        job_id: str,
        worker_id: str,
        token: int,
        result_wire: dict,
        wall: Optional[float] = None,
    ) -> dict:
        return self._request(
            "POST", "/workers/upload",
            {"job_id": job_id, "worker_id": worker_id, "token": token,
             "result": result_wire, "wall": wall},
            idempotent=True,
        )

    def quarantine_trial(
        self,
        job_id: str,
        worker_id: str,
        token: int,
        trial_id: str,
        fingerprint: str,
        error: str,
        error_class_name: str,
    ) -> dict:
        return self._request(
            "POST", "/workers/quarantine",
            {"job_id": job_id, "worker_id": worker_id, "token": token,
             "trial_id": trial_id, "fingerprint": fingerprint,
             "error": error, "error_class": error_class_name},
            idempotent=True,
        )

    def ack_job(self, job_id: str, worker_id: str, token: int) -> dict:
        return self._request(
            "POST", "/workers/ack",
            {"job_id": job_id, "worker_id": worker_id, "token": token},
            idempotent=True,
        )

    def requeue_job(self, job_id: str, worker_id: str, token: int) -> dict:
        return self._request(
            "POST", "/workers/requeue",
            {"job_id": job_id, "worker_id": worker_id, "token": token},
            idempotent=True,
        )

    def prune_runs(
        self,
        max_age_s: Optional[float] = None,
        max_keep: Optional[int] = None,
    ) -> dict:
        return self._request(
            "POST", "/runs/prune",
            {"max_age_s": max_age_s, "max_keep": max_keep},
            idempotent=True,
        )

    def summary(
        self,
        experiment: str,
        metric: str,
        qs: Sequence[float] = (10, 50, 90),
    ) -> dict:
        query = urllib.parse.urlencode({
            "experiment": experiment, "metric": metric,
            "q": ",".join(str(q) for q in qs),
        })
        return self._request("GET", f"/runs/summary?{query}")

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
        idempotent: Optional[bool] = None,
    ) -> dict:
        if idempotent is None:
            idempotent = method == "GET"
        data = None if body is None else json.dumps(body).encode("utf-8")
        attempts = self.retries + 1 if idempotent else 1
        for attempt in range(attempts):
            req = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                rule = None
                if self.fault_hook is not None:
                    rule = self.fault_hook("client.request", path)
                if rule is not None and rule.action == "drop":
                    raise urllib.error.URLError(
                        "injected: request dropped before send"
                    )
                with urllib.request.urlopen(
                    req, timeout=timeout or self.timeout
                ) as resp:
                    payload = json.loads(resp.read().decode("utf-8"))
                if rule is not None and rule.action == "truncate":
                    # The server handled the request; the response is lost
                    # on the wire — the retry must deduplicate server-side.
                    raise urllib.error.URLError(
                        "injected: response truncated"
                    )
                return payload
            except urllib.error.HTTPError as exc:
                # The server answered: not a transport failure, no retry.
                code = None
                try:
                    payload = json.loads(exc.read().decode("utf-8"))
                    message = payload.get("error", "")
                    code = payload.get("code")
                except Exception:
                    message = exc.reason
                raise ApiError(
                    exc.code, message or f"HTTP {exc.code}", code=code
                )
            except (OSError, json.JSONDecodeError):
                # URLError, ConnectionError, socket timeouts, truncated
                # JSON — the request may or may not have been processed.
                if attempt == attempts - 1:
                    raise
                self._sleep(
                    self.backoff_s * (2 ** attempt)
                    * (0.5 + 0.5 * self._rng.random())
                )
        raise AssertionError("unreachable")  # pragma: no cover
