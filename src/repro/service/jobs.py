"""The service's job model: a sweep's trials plus queueing metadata.

A :class:`SweepJob` wraps the trial list of one
:class:`~repro.experiments.spec.ExperimentSpec` with everything the
coordinator needs to schedule it: a priority, a state machine, per-trial
progress counters, and the testbed seed the trials must run against.

State machine::

    queued -> running -> done
       ^         |   \\-> done_partial (some trials quarantined, rest ok)
       |         |   \\-> failed       (coordinator-level error)
       |         |   \\-> cancelled    (cancel honored between trials)
       \\--------/                     (preempted / requeued / crash-resumed)

Jobs serialize to a wire dict (via the TrialSpec wire format) so they can
arrive over HTTP and be persisted in the run-table's jobs table — which is
what lets a restarted coordinator re-queue anything left open by a crash.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from typing import List, Optional

from repro.experiments.spec import ExperimentSpec, TrialSpec

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
#: Every trial has an outcome, but some were quarantined (permanent
#: failures, hung trials, worker-killers) — the sweep is usable, not whole.
DONE_PARTIAL = "done_partial"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, DONE_PARTIAL, FAILED, CANCELLED})

ALL_STATES = frozenset({QUEUED, RUNNING}) | TERMINAL_STATES


@dataclass
class SweepJob:
    """One queued sweep: trials + priority + live progress.

    ``priority`` is higher-runs-first; ties break FIFO by submission. The
    progress counters (``completed``/``failed``/``quarantined``) are
    maintained by the coordinator and include trials served from the
    fingerprinted store (or already-quarantined run-table rows) on resume,
    so ``completed + quarantined == total`` always means "every trial has
    an outcome", however many processes it took to get there.

    ``idempotency_key`` is the client-chosen dedup token: the coordinator
    refuses to create a second job for a key it has seen (live or in the
    run-table), which is what makes retried HTTP submits safe.
    """

    job_id: str
    name: str
    trials: List[TrialSpec]
    priority: int = 0
    testbed_seed: int = 1
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    #: Lease-grant count: bumped by the queue on every grant (first run,
    #: re-lease after a reap, resume after a crash). Recorded next to each
    #: run-table row so "which attempt produced this row" is queryable.
    attempt: int = 0
    error: Optional[str] = None
    idempotency_key: Optional[str] = None
    #: Set by cancel(); the coordinator honors it at the next trial boundary.
    cancel_requested: bool = field(default=False, compare=False)

    @property
    def total(self) -> int:
        return len(self.trials)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def progress(self) -> dict:
        """The JSON-ready view the HTTP status/tail endpoints serve."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "priority": self.priority,
            "testbed_seed": self.testbed_seed,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "attempt": self.attempt,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    # ------------------------------------------------------------------
    # Wire format (HTTP submit + run-table persistence)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "trials": [t.to_wire() for t in self.trials],
            "priority": self.priority,
            "testbed_seed": self.testbed_seed,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "attempt": self.attempt,
            "error": self.error,
            "idempotency_key": self.idempotency_key,
        }

    @classmethod
    def from_wire(cls, obj: dict) -> "SweepJob":
        state = obj.get("state", QUEUED)
        if state not in ALL_STATES:
            raise ValueError(f"unknown job state {state!r}")
        return cls(
            job_id=str(obj["job_id"]),
            name=str(obj["name"]),
            trials=[TrialSpec.from_wire(t) for t in obj["trials"]],
            priority=int(obj.get("priority", 0)),
            testbed_seed=int(obj.get("testbed_seed", 1)),
            state=state,
            submitted_at=obj.get("submitted_at", 0.0),
            started_at=obj.get("started_at"),
            finished_at=obj.get("finished_at"),
            completed=int(obj.get("completed", 0)),
            failed=int(obj.get("failed", 0)),
            quarantined=int(obj.get("quarantined", 0)),
            attempt=int(obj.get("attempt", 0)),
            error=obj.get("error"),
            idempotency_key=obj.get("idempotency_key"),
        )


def new_job(
    name: str,
    trials: List[TrialSpec],
    priority: int = 0,
    testbed_seed: int = 1,
    job_id: Optional[str] = None,
    now: Optional[float] = None,
    idempotency_key: Optional[str] = None,
) -> SweepJob:
    """Mint a fresh queued job (random id, submission timestamp)."""
    if not trials:
        raise ValueError(f"job {name!r} has no trials")
    return SweepJob(
        job_id=job_id or uuid.uuid4().hex[:12],
        name=name,
        trials=list(trials),
        priority=priority,
        testbed_seed=testbed_seed,
        submitted_at=time.time() if now is None else now,
        idempotency_key=idempotency_key,
    )


def job_from_experiment(
    spec: ExperimentSpec,
    priority: int = 0,
    testbed_seed: int = 1,
    job_id: Optional[str] = None,
) -> SweepJob:
    """Wrap an in-process ExperimentSpec as a submittable job. The spec's
    ``reduce`` stays behind (the service works at trial granularity)."""
    return new_job(
        spec.name,
        list(spec.trials),
        priority=priority,
        testbed_seed=testbed_seed,
        job_id=job_id,
    )
