"""Ready-made testbed configurations beyond the default office floor.

The paper's evaluation lives on one indoor office floor; downstream users
will want other regimes. Each preset is calibrated only loosely — the tests
assert the qualitative property named in its docstring, not a census match.
"""

from __future__ import annotations

from repro.net.testbed import TestbedConfig
from repro.net.topology import FloorPlan


def paper_office() -> TestbedConfig:
    """The default: calibrated against the paper's §5.1 census."""
    return TestbedConfig()


def dense_office() -> TestbedConfig:
    """A small, crowded floor: almost every pair in carrier-sense range.

    Exposed terminals are rare here (receivers are near every sender), so
    CMAP should converge to CSMA behaviour — the paper's "converging to the
    performance of CSMA when senders and receivers are all close" claim.
    """
    return TestbedConfig(
        num_nodes=30,
        floor=FloorPlan(90.0, 45.0),
        p_los=0.7,
        shadowing_sigma_db=4.0,
    )


def sparse_warehouse() -> TestbedConfig:
    """A big open space with long LOS links and weak walls.

    Few conflicts, many concurrent-transmission opportunities: the
    spatial-reuse regime where reactive concurrency shines.
    """
    return TestbedConfig(
        num_nodes=50,
        floor=FloorPlan(420.0, 210.0),
        path_loss_exponent=2.8,
        p_los=0.8,
        shadowing_sigma_db=4.0,
    )


def obstructed_multiroom() -> TestbedConfig:
    """Heavy walls: deep shadowing, mostly NLOS links, ragged connectivity.

    The stress case for the conflict map — headers are harder to overhear,
    so hidden interferers are more common and the backoff works harder.
    """
    return TestbedConfig(
        num_nodes=50,
        floor=FloorPlan(220.0, 110.0),
        path_loss_exponent=3.6,
        p_los=0.25,
        shadowing_sigma_db=8.0,
    )


ALL_PRESETS = {
    "paper_office": paper_office,
    "dense_office": dense_office,
    "sparse_warehouse": sparse_warehouse,
    "obstructed_multiroom": obstructed_multiroom,
}
