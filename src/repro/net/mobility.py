"""Deterministic node mobility for the time-varying world.

CMAP's central claim is that measurement-driven conflict maps *adapt* as the
channel changes (paper section 3.4); exercising that requires nodes that
actually move. This module provides RNG-stream-driven mobility models and a
:class:`MobilityController` that plays them as ordinary engine events, so a
mobile run is exactly as deterministic as a static one: every trajectory is
a pure function of (testbed seed, run seed, node id), independent of
execution backend.

Models are registered by name (like MAC builders) so experiment specs can
reference them as plain data and pickle through the process-pool executor:

* ``"static"`` -- no movement (the degenerate model; zero events).
* ``"random_waypoint"`` -- the classic office-floor walk: pick a uniform
  waypoint, walk to it at a (possibly random) pedestrian speed with position
  updates every ``step_interval`` seconds, pause, repeat.
* ``"region_hop"`` -- teleport between the section 5.6 floor regions every
  ``period`` seconds: coarse, cheap geometry changes that flip conflict
  relationships wholesale (the hardest case for map adaptation).

Determinism rules (see DESIGN.md "Dynamic world"):

1. every draw comes from the per-node stream ``rngs.stream("mobility", n)``;
2. the controller schedules nodes in sorted-id order at start;
3. a position update is one NORMAL-priority event calling
   ``Network.set_position`` -- it never touches another node's streams.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.net.topology import FloorPlan
from repro.phy.propagation import Position

if TYPE_CHECKING:  # pragma: no cover
    from repro.network import Network

#: One trajectory step: (seconds since the previous step, new position).
Step = Tuple[float, Position]


def _uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    # lo + (hi - lo) * random() is what Generator.uniform computes
    # internally -- same stream, same bits (see DESIGN.md determinism rules).
    return float(lo + (hi - lo) * rng.random())


class MobilityModel:
    """Interface: stateless trajectory generator.

    ``leg(pos, rng)`` returns the next movement leg from ``pos`` as a tuple
    of :data:`Step`\\ s; an empty tuple means the node never moves again.
    Models keep no per-node state -- everything a leg needs is (current
    position, the node's RNG stream), which is what makes trajectories
    reproducible per node.
    """

    name = "abstract"

    def leg(self, pos: Position, rng: np.random.Generator) -> Tuple[Step, ...]:
        raise NotImplementedError


class StaticModel(MobilityModel):
    """No movement; attaching it is equivalent to attaching nothing."""

    name = "static"

    def leg(self, pos: Position, rng: np.random.Generator) -> Tuple[Step, ...]:
        return ()


class RandomWaypoint(MobilityModel):
    """Random-waypoint walk bounded by the office floor.

    Args:
        floor: the floor plan bounding the walk.
        speed_mps: walking speed; a scalar, or (lo, hi) drawn per leg.
        pause_s: dwell time at each waypoint; scalar or (lo, hi) per leg.
        step_interval: seconds between position updates while walking.
            Coarser steps mean fewer geometry invalidations (cheaper) but
            blockier trajectories; 0.25 s at 1 m/s moves 25 cm per update,
            far below the scale at which indoor links change character.
    """

    name = "random_waypoint"

    def __init__(
        self,
        floor: FloorPlan,
        speed_mps=1.0,
        pause_s=0.0,
        step_interval: float = 0.25,
    ):
        if step_interval <= 0:
            raise ValueError("step_interval must be positive")
        self.floor = floor
        self.speed_mps = speed_mps
        self.pause_s = pause_s
        self.step_interval = step_interval

    def _draw(self, knob, rng: np.random.Generator) -> float:
        if isinstance(knob, (tuple, list)):
            lo, hi = knob
            return _uniform(rng, lo, hi)
        return float(knob)

    def leg(self, pos: Position, rng: np.random.Generator) -> Tuple[Step, ...]:
        pause = self._draw(self.pause_s, rng)
        speed = self._draw(self.speed_mps, rng)
        target = Position(
            _uniform(rng, 0.0, self.floor.width_m),
            _uniform(rng, 0.0, self.floor.height_m),
        )
        if speed <= 0:
            return ()
        dist = math.hypot(target.x - pos.x, target.y - pos.y)
        steps: List[Step] = []
        if pause > 0:
            steps.append((pause, pos))
        travel = dist / speed
        n = max(1, int(math.ceil(travel / self.step_interval)))
        for i in range(1, n + 1):
            frac = i / n
            steps.append(
                (
                    travel / n,
                    Position(
                        pos.x + (target.x - pos.x) * frac,
                        pos.y + (target.y - pos.y) * frac,
                    ),
                )
            )
        return tuple(steps)


class RegionHop(MobilityModel):
    """Teleport to a uniform point in a uniformly chosen floor region.

    Models a client relocating between the section 5.6 regions (laptop user
    changing offices): one geometry event per ``period`` seconds, with the
    conflict map forced to re-learn wholesale after each hop.
    """

    name = "region_hop"

    def __init__(
        self,
        floor: FloorPlan,
        period: float = 2.0,
        columns: int = 3,
        rows: int = 2,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.floor = floor
        self.period = period
        self.regions = floor.regions(columns, rows)

    def leg(self, pos: Position, rng: np.random.Generator) -> Tuple[Step, ...]:
        region = self.regions[int(rng.integers(0, len(self.regions)))]
        target = Position(
            _uniform(rng, region.x_min, region.x_max),
            _uniform(rng, region.y_min, region.y_max),
        )
        return ((self.period, target),)


#: model name -> builder(floor, **params) -> MobilityModel. String keys keep
#: mobility specs picklable and CLI-addressable, like MAC_BUILDERS.
MOBILITY_MODELS: Dict[str, Callable[..., MobilityModel]] = {}


def register_mobility_model(name: str):
    """Decorator registering a ``builder(floor, **params) -> MobilityModel``."""

    def deco(builder: Callable[..., MobilityModel]) -> Callable[..., MobilityModel]:
        MOBILITY_MODELS[name] = builder
        return builder

    return deco


@register_mobility_model("static")
def build_static(floor: FloorPlan, **params) -> StaticModel:
    return StaticModel()


@register_mobility_model("random_waypoint")
def build_random_waypoint(floor: FloorPlan, **params) -> RandomWaypoint:
    return RandomWaypoint(floor, **params)


@register_mobility_model("region_hop")
def build_region_hop(floor: FloorPlan, **params) -> RegionHop:
    return RegionHop(floor, **params)


def build_mobility_model(
    name: str, floor: FloorPlan, params: Optional[dict] = None
) -> MobilityModel:
    """Resolve a registered model name + params into a model instance."""
    if name not in MOBILITY_MODELS:
        raise KeyError(
            f"unknown mobility model {name!r}; registered: "
            f"{sorted(MOBILITY_MODELS)}"
        )
    return MOBILITY_MODELS[name](floor, **(params or {}))


class MobilityController:
    """Plays mobility models as engine events against one network.

    Attach (node, model) pairs before :meth:`start`; the controller pulls
    each node's trajectory from ``network.rngs.stream("mobility", node_id)``
    and applies every step through ``network.set_position`` -- which
    upgrades the geometry to copy-on-write on first use, so a network whose
    controller has only static models stays on the single-build fast path.

    Mobility composes with churn: a walker that is currently out of the
    network (left, or not yet joined) keeps walking -- the device moves
    while disassociated -- so its geometry is already up to date when it
    (re)joins, and the trajectory consumes the same RNG draws whether or
    not churn is attached.
    """

    def __init__(self, network: "Network"):
        self.network = network
        self.sim = network.sim
        self._models: Dict[int, MobilityModel] = {}
        self._started = False
        #: Total position updates applied (tests, diagnostics).
        self.moves_applied = 0

    def attach(self, node_id: int, model: MobilityModel) -> None:
        if self._started:
            raise RuntimeError("attach mobility models before start()")
        if node_id not in self.network.testbed.positions:
            raise KeyError(f"node {node_id} not in testbed")
        self._models[node_id] = model

    def start(self) -> None:
        """Schedule each node's first leg (sorted ids: deterministic seqs)."""
        if self._started:
            return
        self._started = True
        for node_id in sorted(self._models):
            self._next_leg(node_id)

    # ------------------------------------------------------------------
    def _rng(self, node_id: int) -> np.random.Generator:
        return self.network.rngs.stream("mobility", node_id)

    def _position(self, node_id: int) -> Position:
        node = self.network.nodes.get(node_id)
        if node is not None:
            return node.position
        return self.network.position_of(node_id)

    def _next_leg(self, node_id: int) -> None:
        model = self._models[node_id]
        steps = model.leg(self._position(node_id), self._rng(node_id))
        if steps:
            self._schedule_step(node_id, steps, 0)

    def _schedule_step(self, node_id: int, steps: Tuple[Step, ...], idx: int) -> None:
        delay, pos = steps[idx]
        self.sim.schedule(delay, self._apply_step, node_id, pos, steps, idx)

    def _apply_step(
        self, node_id: int, pos: Position, steps: Tuple[Step, ...], idx: int
    ) -> None:
        # Dwell steps (pause legs re-emit the current position) advance
        # time but move nothing: skip the set_position, which would pay an
        # O(N) RSS row recompute and stale every fan-out table containing
        # the node for a zero-distance "move".
        if pos != self._position(node_id):
            self.network.set_position(node_id, pos)
            self.moves_applied += 1
        nxt = idx + 1
        if nxt < len(steps):
            self._schedule_step(node_id, steps, nxt)
        else:
            self._next_leg(node_id)
