"""Node placement on an office floor.

The paper's testbed is 50 nodes spread over one large office floor
(Fig. 10). We generate placements with a jittered grid — office testbeds are
roughly regular because nodes sit in offices — and partition the floor into
the six "regions" the access-point experiment uses (§5.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.phy.propagation import Position


@dataclass(frozen=True)
class FloorPlan:
    """Rectangular floor of ``width_m`` x ``height_m`` metres."""

    width_m: float
    height_m: float

    def regions(self, columns: int = 3, rows: int = 2) -> List["Region"]:
        """Partition the floor into a columns x rows grid of regions.

        The AP experiment (paper §5.6) divides the testbed into six regions
        and places one AP per region; 3 x 2 matches a long office floor.
        """
        cell_w = self.width_m / columns
        cell_h = self.height_m / rows
        out = []
        for r in range(rows):
            for c in range(columns):
                out.append(
                    Region(
                        index=r * columns + c,
                        x_min=c * cell_w,
                        x_max=(c + 1) * cell_w,
                        y_min=r * cell_h,
                        y_max=(r + 1) * cell_h,
                    )
                )
        return out


@dataclass(frozen=True)
class Region:
    """One rectangular region of the floor."""

    index: int
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def contains(self, p: Position) -> bool:
        return self.x_min <= p.x < self.x_max and self.y_min <= p.y < self.y_max

    @property
    def center(self) -> Position:
        return Position((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)


def grid_positions(
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    jitter_fraction: float = 0.35,
) -> Dict[int, Position]:
    """Place ``n`` nodes on a jittered grid filling the floor.

    ``jitter_fraction`` is the uniform displacement as a fraction of the cell
    pitch; 0 gives a perfect grid, values near 0.5 approach uniform noise.
    """
    if n <= 0:
        raise ValueError("need at least one node")
    aspect = floor.width_m / floor.height_m
    cols = max(1, int(round(np.sqrt(n * aspect))))
    rows = max(1, int(np.ceil(n / cols)))
    pitch_x = floor.width_m / cols
    pitch_y = floor.height_m / rows
    positions: Dict[int, Position] = {}
    idx = 0
    for r in range(rows):
        for c in range(cols):
            if idx >= n:
                break
            jx = rng.uniform(-jitter_fraction, jitter_fraction) * pitch_x
            jy = rng.uniform(-jitter_fraction, jitter_fraction) * pitch_y
            x = float(np.clip((c + 0.5) * pitch_x + jx, 0.0, floor.width_m))
            y = float(np.clip((r + 0.5) * pitch_y + jy, 0.0, floor.height_m))
            positions[idx] = Position(x, y)
            idx += 1
    return positions


def random_positions(
    n: int, floor: FloorPlan, rng: np.random.Generator
) -> Dict[int, Position]:
    """Place ``n`` nodes uniformly at random on the floor."""
    return {
        i: Position(
            float(rng.uniform(0.0, floor.width_m)),
            float(rng.uniform(0.0, floor.height_m)),
        )
        for i in range(n)
    }


def assign_regions(
    positions: Dict[int, Position], regions: List[Region]
) -> Dict[int, List[int]]:
    """Map region index -> node ids located inside it."""
    out: Dict[int, List[int]] = {r.index: [] for r in regions}
    for node_id, pos in positions.items():
        for region in regions:
            if region.contains(pos):
                out[region.index].append(node_id)
                break
        else:
            # Points exactly on the far edge fall into the nearest region.
            nearest = min(
                regions,
                key=lambda r: (r.center.x - pos.x) ** 2 + (r.center.y - pos.y) ** 2,
            )
            out[nearest.index].append(node_id)
    return out
