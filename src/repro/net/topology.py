"""Node placement on an office floor.

The paper's testbed is 50 nodes spread over one large office floor
(Fig. 10). We generate placements with a jittered grid — office testbeds are
roughly regular because nodes sit in offices — and partition the floor into
the six "regions" the access-point experiment uses (§5.6).

Beyond the paper's single floor, a registry of named placement generators
(:data:`PLACEMENTS`) supplies the spatial substrates the scale experiments
sweep over: jittered grids, uniform noise, clustered hotspots, corridors,
and engineered hidden-/exposed-terminal cell tilings. Every generator is a
pure function of ``(n, floor, rng)`` plus keyword knobs, so placements are
reproducible and addressable as plain data (see
:mod:`repro.experiments.topologies`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.phy.propagation import Position


@dataclass(frozen=True)
class FloorPlan:
    """Rectangular floor of ``width_m`` x ``height_m`` metres."""

    width_m: float
    height_m: float

    def regions(self, columns: int = 3, rows: int = 2) -> List["Region"]:
        """Partition the floor into a columns x rows grid of regions.

        The AP experiment (paper §5.6) divides the testbed into six regions
        and places one AP per region; 3 x 2 matches a long office floor.
        """
        cell_w = self.width_m / columns
        cell_h = self.height_m / rows
        out = []
        for r in range(rows):
            for c in range(columns):
                out.append(
                    Region(
                        index=r * columns + c,
                        x_min=c * cell_w,
                        x_max=(c + 1) * cell_w,
                        y_min=r * cell_h,
                        y_max=(r + 1) * cell_h,
                    )
                )
        return out


@dataclass(frozen=True)
class Region:
    """One rectangular region of the floor."""

    index: int
    x_min: float
    x_max: float
    y_min: float
    y_max: float

    def contains(self, p: Position) -> bool:
        return self.x_min <= p.x < self.x_max and self.y_min <= p.y < self.y_max

    @property
    def center(self) -> Position:
        return Position((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)


def grid_positions(
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    jitter_fraction: float = 0.35,
) -> Dict[int, Position]:
    """Place ``n`` nodes on a jittered grid filling the floor.

    ``jitter_fraction`` is the uniform displacement as a fraction of the cell
    pitch; 0 gives a perfect grid, values near 0.5 approach uniform noise.
    """
    if n <= 0:
        raise ValueError("need at least one node")
    aspect = floor.width_m / floor.height_m
    cols = max(1, int(round(np.sqrt(n * aspect))))
    rows = max(1, int(np.ceil(n / cols)))
    pitch_x = floor.width_m / cols
    pitch_y = floor.height_m / rows
    positions: Dict[int, Position] = {}
    idx = 0
    for r in range(rows):
        for c in range(cols):
            if idx >= n:
                break
            jx = rng.uniform(-jitter_fraction, jitter_fraction) * pitch_x
            jy = rng.uniform(-jitter_fraction, jitter_fraction) * pitch_y
            x = float(np.clip((c + 0.5) * pitch_x + jx, 0.0, floor.width_m))
            y = float(np.clip((r + 0.5) * pitch_y + jy, 0.0, floor.height_m))
            positions[idx] = Position(x, y)
            idx += 1
    return positions


def random_positions(
    n: int, floor: FloorPlan, rng: np.random.Generator
) -> Dict[int, Position]:
    """Place ``n`` nodes uniformly at random on the floor."""
    return {
        i: Position(
            float(rng.uniform(0.0, floor.width_m)),
            float(rng.uniform(0.0, floor.height_m)),
        )
        for i in range(n)
    }


def clustered_positions(
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    clusters: int = 0,
    spread_m: float = 18.0,
) -> Dict[int, Position]:
    """Place ``n`` nodes in gaussian hotspots (conference rooms, labs).

    ``clusters`` of 0 picks ``~sqrt(n)`` hotspots. Cluster centres are
    uniform on the floor (inset by ``spread_m`` so clusters keep their
    shape at the walls); node ``i`` joins cluster ``i % clusters`` and
    scatters around its centre with an isotropic gaussian of ``spread_m``.
    Hotspot worlds are the best case for neighborhood culling — density is
    local — and the worst case for carrier sense, which a whole hotspot
    shares.
    """
    if n <= 0:
        raise ValueError("need at least one node")
    k = clusters if clusters > 0 else max(2, int(round(math.sqrt(n))))
    inset_x = min(spread_m, floor.width_m / 4)
    inset_y = min(spread_m, floor.height_m / 4)
    centers = [
        (
            float(rng.uniform(inset_x, floor.width_m - inset_x)),
            float(rng.uniform(inset_y, floor.height_m - inset_y)),
        )
        for _ in range(k)
    ]
    positions: Dict[int, Position] = {}
    for i in range(n):
        cx, cy = centers[i % k]
        x = float(np.clip(cx + spread_m * rng.standard_normal(), 0.0, floor.width_m))
        y = float(np.clip(cy + spread_m * rng.standard_normal(), 0.0, floor.height_m))
        positions[i] = Position(x, y)
    return positions


def corridor_positions(
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    width_fraction: float = 0.12,
) -> Dict[int, Position]:
    """Place ``n`` nodes along a hallway spanning the floor's long axis.

    Nodes sit at even intervals down the corridor with uniform jitter of
    half a pitch lengthwise and ``width_fraction`` of the floor height
    crosswise. A near-one-dimensional world maximises chains of hidden and
    exposed terminals: every node only hears a bounded stretch of corridor.
    """
    if n <= 0:
        raise ValueError("need at least one node")
    pitch = floor.width_m / n
    band = max(1.0, floor.height_m * width_fraction)
    mid = floor.height_m / 2.0
    positions: Dict[int, Position] = {}
    for i in range(n):
        jx = float(rng.uniform(-0.5, 0.5)) * pitch
        x = float(np.clip((i + 0.5) * pitch + jx, 0.0, floor.width_m))
        y = float(np.clip(mid + rng.uniform(-band / 2, band / 2), 0.0, floor.height_m))
        positions[i] = Position(x, y)
    return positions


#: Node offsets of one engineered 4-node cell, in metres from the cell
#: centre, ordered (s1, r1, s2, r2) — the flow layout
#: ``repro.experiments.topologies`` derives per-cell flows from.
#:
#: Hidden cell (log-distance at the testbed defaults: 18 dBm, PL(1m) 46.7,
#: exponent 3.3): senders 110 m apart (~ -96 dBm, below the -95 dBm
#: carrier-sense threshold), each receiver ~45 m from its sender
#: (~ -83 dBm, comfortably decodable) and ~65 m from the far sender
#: (~ -88 dBm, strong enough to collide) — classic hidden terminals.
HIDDEN_CELL_OFFSETS: Tuple[Tuple[float, float], ...] = (
    (-55.0, 0.0),  # s1
    (-10.0, -6.0),  # r1
    (55.0, 0.0),  # s2
    (10.0, 6.0),  # r2
)
#: Exposed cell: senders 60 m apart (~ -87 dBm — comfortably above the
#: -95 dBm carrier-sense threshold, so each defers to the other), receivers
#: on opposite outer flanks 20 m from their sender (~ -72 dBm strong) and
#: 80 m from the far sender (~ -91 dBm, below sensitivity): both flows —
#: data and the return ACKs — would succeed concurrently, carrier sense
#: forbids it.
EXPOSED_CELL_OFFSETS: Tuple[Tuple[float, float], ...] = (
    (-30.0, 0.0),  # s1
    (-50.0, 0.0),  # r1
    (30.0, 0.0),  # s2
    (50.0, 0.0),  # r2
)


def cell_positions(
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    offsets: Tuple[Tuple[float, float], ...],
    jitter_m: float = 2.0,
) -> Dict[int, Position]:
    """Tile engineered 4-node cells over the floor (``n`` must be 4k).

    Cells land on a jitter-free grid sized from the cell count and the
    floor's aspect; each node takes its cell's offset plus a small uniform
    jitter (``jitter_m``) so no two worlds are byte-equal. Node ids are
    cell-major in offset order, which is what lets the scenario layer
    derive each cell's flows without a link search.
    """
    cell_size = len(offsets)
    if n <= 0 or n % cell_size:
        raise ValueError(f"cell placements need a multiple of {cell_size} nodes")
    cells = n // cell_size
    aspect = floor.width_m / floor.height_m
    cols = max(1, int(round(math.sqrt(cells * aspect))))
    rows = max(1, int(math.ceil(cells / cols)))
    pitch_x = floor.width_m / cols
    pitch_y = floor.height_m / rows
    positions: Dict[int, Position] = {}
    for c in range(cells):
        cx = (c % cols + 0.5) * pitch_x
        cy = (c // cols + 0.5) * pitch_y
        for k, (dx, dy) in enumerate(offsets):
            jx = float(rng.uniform(-jitter_m, jitter_m))
            jy = float(rng.uniform(-jitter_m, jitter_m))
            positions[c * cell_size + k] = Position(
                float(np.clip(cx + dx + jx, 0.0, floor.width_m)),
                float(np.clip(cy + dy + jy, 0.0, floor.height_m)),
            )
    return positions


def hidden_cell_positions(
    n: int, floor: FloorPlan, rng: np.random.Generator, jitter_m: float = 2.0
) -> Dict[int, Position]:
    """Tile hidden-terminal cells (see :data:`HIDDEN_CELL_OFFSETS`)."""
    return cell_positions(n, floor, rng, HIDDEN_CELL_OFFSETS, jitter_m)


def exposed_cell_positions(
    n: int, floor: FloorPlan, rng: np.random.Generator, jitter_m: float = 2.0
) -> Dict[int, Position]:
    """Tile exposed-terminal cells (see :data:`EXPOSED_CELL_OFFSETS`)."""
    return cell_positions(n, floor, rng, EXPOSED_CELL_OFFSETS, jitter_m)


#: placement name -> generator(n, floor, rng, **params) -> positions.
#: String keys keep testbed configs picklable and CLI-addressable, exactly
#: like the MAC and mobility registries.
PLACEMENTS: Dict[str, Callable[..., Dict[int, Position]]] = {}


def register_placement(name: str):
    """Decorator registering a placement generator under ``name``."""

    def deco(fn: Callable[..., Dict[int, Position]]):
        PLACEMENTS[name] = fn
        return fn

    return deco


register_placement("grid")(grid_positions)
register_placement("uniform")(random_positions)
register_placement("clustered")(clustered_positions)
register_placement("corridor")(corridor_positions)
register_placement("hidden_cells")(hidden_cell_positions)
register_placement("exposed_cells")(exposed_cell_positions)


def make_positions(
    name: str,
    n: int,
    floor: FloorPlan,
    rng: np.random.Generator,
    **params,
) -> Dict[int, Position]:
    """Resolve a registered placement name into generated positions."""
    if name not in PLACEMENTS:
        raise KeyError(
            f"unknown placement {name!r}; registered: {sorted(PLACEMENTS)}"
        )
    return PLACEMENTS[name](n, floor, rng, **params)


def assign_regions(
    positions: Dict[int, Position], regions: List[Region]
) -> Dict[int, List[int]]:
    """Map region index -> node ids located inside it."""
    out: Dict[int, List[int]] = {r.index: [] for r in regions}
    for node_id, pos in positions.items():
        for region in regions:
            if region.contains(pos):
                out[region.index].append(node_id)
                break
        else:
            # Points exactly on the far edge fall into the nearest region.
            nearest = min(
                regions,
                key=lambda r: (r.center.x - pos.x) ** 2 + (r.center.y - pos.y) ** 2,
            )
            out[nearest.index].append(node_id)
    return out
