"""Link measurement and classification (paper §5.1).

Before each experiment the paper measures, for every node pair, the isolated
packet reception rate (PRR) and average signal strength at 6 Mb/s, then
classifies:

* **in range**: both directions PRR > 0.2 and signal above the 10th
  percentile of all links network-wide;
* **potential transmission link**: both directions PRR > 0.9 and signal above
  the 10th percentile (the only links experiments send data over);
* signal-strength percentile bands (90th percentile = "strong") used by the
  exposed-terminal topology constraints (Fig. 11).

We compute isolated PRR analytically from the error model — in a simulator
the channel is known exactly, so Monte-Carlo link measurement would add noise
without adding information. In-run delivery remains stochastic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.phy.modulation import ErrorModel, Rate, RATE_6M, isolated_prr
from repro.phy.propagation import RssMatrix


@dataclass(frozen=True)
class LinkStats:
    """Measured (analytic) statistics of one directed link."""

    src: int
    dst: int
    rss_dbm: float
    prr: float


class LinkTable:
    """All-pairs link statistics plus the paper's classification predicates."""

    def __init__(
        self,
        node_ids: List[int],
        rss: RssMatrix,
        noise_dbm: float,
        error_model: ErrorModel,
        rate: Rate = RATE_6M,
        probe_size_bytes: int = 1428,
        connectivity_floor_prr: float = 1e-4,
        fading=None,
    ):
        self.node_ids = list(node_ids)
        self.rate = rate
        self.fading = fading
        self._stats: Dict[Tuple[int, int], LinkStats] = {}
        for a in self.node_ids:
            for b in self.node_ids:
                if a == b:
                    continue
                rss_dbm = rss.rss(a, b)
                if fading is not None:
                    prr = fading.mean_prr(
                        rss_dbm, noise_dbm, rate, probe_size_bytes,
                        error_model, a, b,
                    )
                else:
                    prr = isolated_prr(
                        rss_dbm, noise_dbm, rate, probe_size_bytes, error_model
                    )
                self._stats[(a, b)] = LinkStats(a, b, rss_dbm, prr)

        connected = [
            ls.rss_dbm
            for ls in self._stats.values()
            if ls.prr > connectivity_floor_prr
        ]
        #: 10th / 90th percentile of signal strength over connected links,
        #: the thresholds used throughout §5's topology constraints.
        self.signal_p10_dbm = (
            float(np.percentile(connected, 10)) if connected else -200.0
        )
        self.signal_p90_dbm = (
            float(np.percentile(connected, 90)) if connected else -200.0
        )
        self._connectivity_floor = connectivity_floor_prr

    # ------------------------------------------------------------------
    # Raw accessors
    # ------------------------------------------------------------------
    def stats(self, src: int, dst: int) -> LinkStats:
        return self._stats[(src, dst)]

    def prr(self, src: int, dst: int) -> float:
        return self._stats[(src, dst)].prr

    def rss(self, src: int, dst: int) -> float:
        return self._stats[(src, dst)].rss_dbm

    def all_links(self) -> Iterable[LinkStats]:
        return self._stats.values()

    # ------------------------------------------------------------------
    # Paper §5.1 predicates
    # ------------------------------------------------------------------
    def has_connectivity(self, a: int, b: int) -> bool:
        """True if either direction delivers anything at all."""
        return (
            self.prr(a, b) > self._connectivity_floor
            or self.prr(b, a) > self._connectivity_floor
        )

    def in_range(self, a: int, b: int) -> bool:
        """Both directions PRR > 0.2 and signal above the 10th percentile."""
        return all(
            self.prr(x, y) > 0.2 and self.rss(x, y) > self.signal_p10_dbm
            for x, y in ((a, b), (b, a))
        )

    def out_of_range(self, a: int, b: int) -> bool:
        """PRR < 0.2 in both directions (Fig. 11(c) 'not in range')."""
        return self.prr(a, b) < 0.2 and self.prr(b, a) < 0.2

    def potential_tx_link(self, a: int, b: int) -> bool:
        """Both directions PRR > 0.9 and signal above the 10th percentile."""
        return all(
            self.prr(x, y) > 0.9 and self.rss(x, y) > self.signal_p10_dbm
            for x, y in ((a, b), (b, a))
        )

    def strong_signal(self, a: int, b: int) -> bool:
        """Signal a->b in the 90th percentile of all links network-wide."""
        return self.rss(a, b) >= self.signal_p90_dbm

    def weak_signal(self, a: int, b: int) -> bool:
        """Signal a->b below the 90th percentile threshold."""
        return self.rss(a, b) < self.signal_p90_dbm

    # ------------------------------------------------------------------
    # Census (paper §5.1 testbed characterisation)
    # ------------------------------------------------------------------
    def census(self) -> "LinkCensus":
        """Summarise connectivity the way §5.1 characterises the testbed."""
        connected = [
            ls for ls in self._stats.values() if ls.prr > self._connectivity_floor
        ]
        dead = sum(1 for ls in connected if ls.prr < 0.1)
        mid = sum(1 for ls in connected if 0.1 <= ls.prr < 0.999)
        perfect = sum(1 for ls in connected if ls.prr >= 0.999)
        degree: Dict[int, int] = {n: 0 for n in self.node_ids}
        for ls in connected:
            if ls.prr >= 0.1:
                degree[ls.src] += 1
        degrees = sorted(degree.values())
        return LinkCensus(
            connected_pairs=len(connected),
            frac_prr_below_01=dead / len(connected) if connected else 0.0,
            frac_prr_mid=mid / len(connected) if connected else 0.0,
            frac_prr_perfect=perfect / len(connected) if connected else 0.0,
            mean_degree=float(np.mean(degrees)) if degrees else 0.0,
            median_degree=float(np.median(degrees)) if degrees else 0.0,
        )


@dataclass(frozen=True)
class LinkCensus:
    """Testbed connectivity summary, comparable to paper §5.1's numbers.

    Paper reports: 2162 connected pairs; 68 % PRR < 0.1; 12 % intermediate;
    20 % PRR = 1; mean degree 15.2; median 17.
    """

    connected_pairs: int
    frac_prr_below_01: float
    frac_prr_mid: float
    frac_prr_perfect: float
    mean_degree: float
    median_degree: float
