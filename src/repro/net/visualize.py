"""ASCII rendering of the testbed floor plan (the Fig. 10 analogue).

Draws node positions on a character grid, optionally with the §5.6 region
boundaries and a highlighted node set (e.g. one experiment's senders and
receivers), so a reader can sanity-check a scenario's geometry without a
plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.testbed import Testbed


def render_floor(
    testbed: Testbed,
    width: int = 76,
    show_regions: bool = False,
    highlight: Optional[Iterable[int]] = None,
    labels: bool = True,
) -> str:
    """Render node positions as an ASCII map.

    Nodes print as their id's last two digits (or ``*`` for highlighted
    ones when ``labels`` is False); region boundaries as ``|`` and ``-``.
    """
    floor = testbed.config.floor
    height = max(6, int(width * floor.height_m / floor.width_m / 2))
    # Two characters per node label; halve the effective x resolution.
    grid = [[" "] * width for _ in range(height)]

    if show_regions:
        regions = testbed.regions()
        for region in regions:
            x0 = int(region.x_min / floor.width_m * (width - 1))
            x1 = int(region.x_max / floor.width_m * (width - 1))
            y0 = int(region.y_min / floor.height_m * (height - 1))
            y1 = int(region.y_max / floor.height_m * (height - 1))
            for x in range(x0, min(x1 + 1, width)):
                grid[y0][x] = "-"
                grid[min(y1, height - 1)][x] = "-"
            for y in range(y0, min(y1 + 1, height)):
                grid[y][x0] = "|"
                grid[y][min(x1, width - 1)] = "|"

    wanted = set(highlight) if highlight is not None else None
    for node_id, pos in sorted(testbed.positions.items()):
        x = int(pos.x / floor.width_m * (width - 3))
        y = int(pos.y / floor.height_m * (height - 1))
        if wanted is not None and node_id in wanted:
            label = f"[{node_id % 100}]" if labels else " * "
        elif labels:
            label = f"{node_id % 100:2d}"
        else:
            label = "."
        for i, ch in enumerate(label):
            if x + i < width:
                grid[y][x + i] = ch

    lines = ["".join(row).rstrip() for row in grid]
    header = (
        f"{floor.width_m:.0f} m x {floor.height_m:.0f} m floor, "
        f"{len(testbed.positions)} nodes"
    )
    return header + "\n" + "\n".join(lines)


def render_link(testbed: Testbed, a: int, b: int) -> str:
    """One-line link summary: distance, RSS, PRR, classification."""
    links = testbed.links
    pos = testbed.positions
    d = pos[a].distance_to(pos[b])
    tags = []
    if links.potential_tx_link(a, b):
        tags.append("potential-tx")
    elif links.in_range(a, b):
        tags.append("in-range")
    elif links.out_of_range(a, b):
        tags.append("out-of-range")
    if links.strong_signal(a, b):
        tags.append("strong")
    return (
        f"{a:>3} -> {b:<3} {d:6.1f} m  {links.rss(a, b):7.1f} dBm  "
        f"PRR {links.prr(a, b):5.3f}  [{', '.join(tags) or 'weak'}]"
    )
