"""Topology, the synthetic 50-node testbed, and link classification."""

from repro.net.topology import FloorPlan, grid_positions, random_positions
from repro.net.testbed import Testbed, TestbedConfig
from repro.net.links import LinkTable, LinkStats

__all__ = [
    "FloorPlan",
    "grid_positions",
    "random_positions",
    "Testbed",
    "TestbedConfig",
    "LinkTable",
    "LinkStats",
]
