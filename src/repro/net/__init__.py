"""Topology, the synthetic 50-node testbed, link classification, mobility."""

from repro.net.topology import FloorPlan, grid_positions, random_positions
from repro.net.testbed import Testbed, TestbedConfig
from repro.net.links import LinkTable, LinkStats
from repro.net.mobility import (
    MobilityController,
    MobilityModel,
    RandomWaypoint,
    RegionHop,
    StaticModel,
    build_mobility_model,
    register_mobility_model,
)

__all__ = [
    "FloorPlan",
    "grid_positions",
    "random_positions",
    "Testbed",
    "TestbedConfig",
    "LinkTable",
    "LinkStats",
    "MobilityController",
    "MobilityModel",
    "RandomWaypoint",
    "RegionHop",
    "StaticModel",
    "build_mobility_model",
    "register_mobility_model",
]
