"""The synthetic 50-node indoor testbed.

Bundles node placement, the propagation model, the pairwise RSS matrix, and
the link table into one reproducible object. Default physical constants are
calibrated (see ``tests/test_testbed.py``) so the link census is in the same
regime as the paper's §5.1 characterisation: a majority of connected pairs
are near-dead, a thin band is intermediate, a solid fraction is perfect, and
mean degree is in the mid-teens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.links import LinkTable
from repro.net.topology import FloorPlan, Region, assign_regions, make_positions
from repro.phy.fading import LosNlosMixtureFading
from repro.phy.modulation import ErrorModel, NistErrorModel, Rate, RATE_6M
from repro.phy.propagation import (
    LogDistanceShadowing,
    Position,
    PropagationModel,
    RssMatrix,
)
from repro.util.rng import RngFactory


@dataclass
class TestbedConfig:
    """Knobs for generating a testbed instance."""

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    num_nodes: int = 50
    floor: FloorPlan = field(default_factory=lambda: FloorPlan(280.0, 140.0))
    #: Named placement generator (see repro.net.topology.PLACEMENTS) plus
    #: its keyword params as a sorted item tuple. The default jittered grid
    #: reproduces the paper's office floor byte-for-byte.
    placement: str = "grid"
    placement_params: tuple = ()
    tx_power_dbm: float = 18.0
    noise_dbm: float = -93.0
    path_loss_exponent: float = 3.3
    pl_at_1m_db: float = 46.7
    shadowing_sigma_db: float = 6.0
    #: LOS/NLOS fading mixture (see repro.phy.fading).
    p_los: float = 0.45
    los_sigma_db: float = 0.5
    #: Payload + MAC overhead used for link-classification probes.
    probe_size_bytes: int = 1428
    rate: Rate = RATE_6M


class Testbed:
    """A generated testbed: positions + channel + link statistics.

    Everything is a deterministic function of ``seed`` so experiments can
    sample many topologies reproducibly (the paper randomises over 50 link
    pairs / 10 client sets per experiment).
    """

    #: Not a test class, despite the name (silences pytest collection).
    __test__ = False

    def __init__(
        self,
        seed: int,
        config: Optional[TestbedConfig] = None,
        error_model: Optional[ErrorModel] = None,
    ):
        self.config = config or TestbedConfig()
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.error_model = error_model or NistErrorModel()

        self.positions: Dict[int, Position] = make_positions(
            self.config.placement,
            self.config.num_nodes,
            self.config.floor,
            self.rngs.stream("placement"),
            **dict(self.config.placement_params),
        )
        self.propagation: PropagationModel = LogDistanceShadowing(
            self.rngs,
            exponent=self.config.path_loss_exponent,
            pl_at_reference_db=self.config.pl_at_1m_db,
            shadowing_sigma_db=self.config.shadowing_sigma_db,
        )
        self.rss = RssMatrix(
            self.propagation, self.positions, self.config.tx_power_dbm
        )
        self.fading = LosNlosMixtureFading(
            seed=self.rngs.seed,
            p_los=self.config.p_los,
            los_sigma_db=self.config.los_sigma_db,
        )
        self._links: Optional[LinkTable] = None

    @property
    def links(self) -> LinkTable:
        """All-pairs link classification, built on first use.

        Laziness matters at scale: the O(N^2) analytic PRR census is pure
        setup that structured scenarios (engineered cell tilings, geometric
        flow sampling) never need, and it is a deterministic function of
        already-fixed state, so deferring it cannot change any result.
        """
        if self._links is None:
            self._links = LinkTable(
                sorted(self.positions),
                self.rss,
                self.config.noise_dbm,
                self.error_model,
                rate=self.config.rate,
                probe_size_bytes=self.config.probe_size_bytes,
                fading=self.fading,
            )
        return self._links

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.positions)

    # ------------------------------------------------------------------
    # Regions (paper §5.6 AP experiment)
    # ------------------------------------------------------------------
    def regions(self, columns: int = 3, rows: int = 2) -> List[Region]:
        return self.config.floor.regions(columns, rows)

    def nodes_by_region(self, columns: int = 3, rows: int = 2) -> Dict[int, List[int]]:
        return assign_regions(self.positions, self.regions(columns, rows))
