"""repro — a full reproduction of CMAP (Vutukuru et al., NSDI 2008).

CMAP is a reactive wireless link layer that harnesses exposed terminals: it
lets transmissions proceed concurrently by default and learns, from observed
packet loss, which concurrent transmission pairs actually conflict — stored
in a distributed *conflict map* consulted before each transmission.

Quickstart::

    from repro import Testbed, Network, cmap_factory

    testbed = Testbed(seed=1)
    net = Network(testbed, track_tx=True)
    for node in (0, 1, 2, 3):
        net.add_node(node, cmap_factory())
    net.add_saturated_flow(0, 1)
    net.add_saturated_flow(2, 3)
    result = net.run(duration=10.0, warmup=4.0)
    print(result.flow_mbps(0, 1), result.flow_mbps(2, 3))

Experiments are declared rather than hand-rolled: a
:class:`~repro.experiments.spec.TrialSpec` describes one run as plain data,
an :class:`~repro.experiments.spec.ExperimentSpec` bundles trials with a
pure reduction, and ``repro.experiments.executor`` materializes them
serially or across a process pool (``python -m repro.cli fig12 --jobs 8``)
with bit-identical results either way.

See DESIGN.md for the system inventory and the spec/executor architecture,
and EXPERIMENTS.md for the paper-vs-measured record of every figure.
"""

from repro.core.params import CmapParams, LatencyProfile
from repro.core.cmap_mac import CmapMac
from repro.mac.dcf import DcfMac, DcfParams
from repro.mac.rtscts import RtsCtsMac, rtscts_factory
from repro.mac.ecsma import EcsmaMac, ecsma_factory
from repro.mac.autorate import ArfDcfMac, arf_factory
from repro.mac.cs_tuning import CsTuningMac, cs_tuning_factory
from repro.mac.iamac import IaMac, iamac_factory
from repro.mac.base import Packet
from repro.net.testbed import Testbed, TestbedConfig
from repro.net import presets
from repro.net.mobility import (
    MobilityController,
    RandomWaypoint,
    RegionHop,
    build_mobility_model,
    register_mobility_model,
)
from repro.network import (
    Network,
    RunResult,
    build_mac_factory,
    cmap_factory,
    dcf_factory,
    register_mac_builder,
)
from repro.sim.engine import Simulator
from repro.tracing import Tracer, TraceKind

__version__ = "1.0.0"

__all__ = [
    "CmapParams",
    "LatencyProfile",
    "CmapMac",
    "DcfMac",
    "DcfParams",
    "RtsCtsMac",
    "rtscts_factory",
    "EcsmaMac",
    "ecsma_factory",
    "ArfDcfMac",
    "arf_factory",
    "CsTuningMac",
    "cs_tuning_factory",
    "IaMac",
    "iamac_factory",
    "Packet",
    "Testbed",
    "TestbedConfig",
    "presets",
    "MobilityController",
    "RandomWaypoint",
    "RegionHop",
    "build_mobility_model",
    "register_mobility_model",
    "Network",
    "RunResult",
    "build_mac_factory",
    "cmap_factory",
    "dcf_factory",
    "register_mac_builder",
    "Simulator",
    "Tracer",
    "TraceKind",
    "__version__",
]
