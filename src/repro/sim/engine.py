"""A small, fast discrete-event engine.

The engine is callback-based: consumers schedule ``fn(*args)`` at an absolute
or relative simulated time and may cancel the returned :class:`Event`. Ties
are broken by an explicit priority, then by scheduling order, which gives the
deterministic "end-of-frame before start-of-frame" semantics the radio model
relies on for back-to-back virtual-packet frames.

Hot-path notes (every CMAP figure is millions of events, so this file is
deliberately tuned):

* The heap stores ``(time, priority, seq, event, fn, args)`` tuples so
  ``heapq`` compares at C speed without calling back into Python; ``seq``
  is unique, so comparison never reaches the trailing elements.
* :meth:`Simulator.schedule_call` and :meth:`Simulator.schedule_fanout`
  skip the :class:`Event` allocation for callbacks that are never cancelled
  (the medium's per-frame fan-out batches, whose receiver entries are
  build-time-specialized ``fn(tx)`` closures — see
  :meth:`repro.phy.medium.Medium.transmit`), while :meth:`schedule` still
  returns a cancellable handle.
* ``schedule`` builds and pushes its entry directly instead of delegating to
  ``schedule_at``, and ``run`` inlines the pop loop instead of calling
  ``step`` per event.
* A live-event counter makes :meth:`pending_count` O(1): pushes increment
  it, and exactly one of ``Event.cancel`` or event execution decrements it.

None of this changes scheduling order: the heap key is the same
``(time, priority, seq)`` triple as before, assigned in the same order.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, Callable, List, Optional, Tuple

from repro.kernels import backend as _kernels_backend


class Priority(IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Lower runs first. Frame ends must be processed before frame starts at the
    same timestamp so a radio finalises one reception before the next
    back-to-back frame arrives.
    """

    FRAME_END = 0
    NORMAL = 1
    FRAME_START = 2
    LATE = 3


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Back-reference for O(1) live-event accounting; cleared when the
        #: event fires or is cancelled so neither path double-counts.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            self._sim = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state}, fn={self.fn!r})"


#: Heap entry layout: (time, priority, seq, event-or-None, fn, args). The
#: event slot is None for uncancellable schedule_call entries.
_Entry = Tuple[float, int, int, Optional[Event], Callable[..., None], tuple]

#: Plain-int copies of the fan-out priorities (avoids enum attribute lookups
#: on the per-frame path; compare equal to their Priority counterparts).
_PRIO_START = int(Priority.FRAME_START)
_PRIO_END = int(Priority.FRAME_END)


class Simulator:
    """Event queue with a monotonically advancing clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    #: Slotted: ``sim.now`` (and the heap/counter fields) are read on every
    #: event and every receive-path callback; slot descriptors skip the
    #: instance-dict hash on each access.
    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_next_seq",
        "_events_processed",
        "_live",
        "_inline_guard_time",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._events_processed = 0
        self._live = 0
        #: While sim-time equals this value, scheduling at the current
        #: instant with priority below FRAME_START raises: the medium has
        #: already delivered this instant's frame-start batch inline, and
        #: such an event would have run before it in the heap layout.
        self._inline_guard_time = -1.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        event = Event(time, priority, seq, fn, args, self)
        heapq.heappush(self._heap, (time, priority, seq, event, fn, args))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        event = Event(time, priority, seq, fn, args, self)
        heapq.heappush(self._heap, (time, priority, seq, event, fn, args))
        self._live += 1
        return event

    def schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        args: tuple = (),
        priority: int = Priority.NORMAL,
    ) -> None:
        """Fast-path schedule with no cancellation handle.

        Identical ordering semantics to :meth:`schedule`, but no
        :class:`Event` is allocated, so the callback cannot be cancelled.
        Used by the medium's per-frame fan-out, which never cancels.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        heapq.heappush(
            self._heap, (time, priority, seq, None, fn, args)
        )
        self._live += 1

    def schedule_fanout(
        self,
        end_delay: float,
        start_fn: Optional[Callable[..., None]],
        start_args: tuple,
        end_fn: Callable[..., None],
        end_args: tuple,
    ) -> None:
        """Schedule one frame's two fan-out events in a single call.

        ``start_fn(*start_args)`` runs now at FRAME_START priority (skipped
        when ``start_fn`` is None — a frame with no receivers), and
        ``end_fn(*end_args)`` runs ``end_delay`` seconds later at FRAME_END
        priority. Sequence numbers are assigned start-then-end, exactly as
        two consecutive ``schedule`` calls would. Neither event is
        cancellable.
        """
        now = self.now
        next_seq = self._next_seq
        heap = self._heap
        push = heapq.heappush
        if start_fn is not None:
            push(heap, (now, _PRIO_START, next_seq(), None, start_fn, start_args))
            self._live += 2
        else:
            self._live += 1
        push(
            heap,
            (now + end_delay, _PRIO_END, next_seq(), None, end_fn, end_args),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event. Returns False when drained."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[3]
            if event is not None:
                if event.cancelled:
                    continue
                event._sim = None
            self.now = entry[0]
            self._events_processed += 1
            self._live -= 1
            entry[4](*entry[5])
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so measurement windows are
        well-defined.

        The kernel backend may supply a compiled drain loop (the ``native``
        backend's C kernel); it executes the same pops in the same order
        with the same counter semantics, so which loop ran is unobservable
        in the outputs.
        """
        loop = _kernels_backend.active_run_loop()
        if loop is not None:
            loop(self, until)
            return
        heap = self._heap
        pop = heapq.heappop
        # The per-event counter increments are batched into a local and
        # written back on exit; callbacks that credit batched deliveries
        # add to the attribute directly, which commutes with the write-back.
        n = 0
        if until is None:
            try:
                while heap:
                    entry = pop(heap)
                    event = entry[3]
                    if event is not None:
                        if event.cancelled:
                            continue
                        event._sim = None
                    self.now = entry[0]
                    n += 1
                    self._live -= 1
                    entry[4](*entry[5])
            finally:
                self._events_processed += n
            return
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event is not None and event.cancelled:
                    pop(heap)
                    continue
                t = entry[0]
                if t > until:
                    break
                pop(heap)
                if event is not None:
                    event._sim = None
                self.now = t
                n += 1
                self._live -= 1
                entry[4](*entry[5])
        finally:
            self._events_processed += n
        self.now = max(self.now, until)

    def deliver_fanout_inline(self, start_fns: tuple, tx: Any) -> bool:
        """Deliver a frame-start batch inline when nothing pends at now.

        The per-frame fast path, calling each specialized receiver entry
        as ``fn(tx)``. Returns False when an entry is queued at the
        current instant — the caller must then round-trip the batch
        through the heap to preserve ordering. Before the first callback
        the ordering guard arms: until sim-time advances, any schedule at
        this instant with priority below FRAME_START raises instead of
        silently diverging from the heap layout (where it would have run
        before the batch). The raw heap depth — which grows by exactly one
        per ``schedule*`` call and never shrinks outside the run loop — is
        snapshotted around the loop to detect scheduling from inside the
        delivered callbacks, and the batch credits one logical event per
        delivered callback, exactly as the heap-scheduled batch would.
        """
        heap = self._heap
        if heap and heap[0][0] <= self.now:
            return False
        self._inline_guard_time = self.now
        depth = len(heap)
        for fn in start_fns:
            fn(tx)
        if len(heap) != depth:
            raise RuntimeError(
                "a frame-start callback scheduled an event during inline "
                "fan-out delivery; this breaks deterministic event "
                "ordering — react from frame-end or MAC timers instead"
            )
        self._events_processed += len(start_fns)
        return True

    def pending_at_now(self) -> bool:
        """True when any queued entry could still run at the current instant.

        Conservative: cancelled entries count (they only make the caller
        fall back to the scheduled path). This is the same test
        :meth:`deliver_fanout_inline` applies before delivering a
        same-instant fan-out batch inline.
        """
        heap = self._heap
        return bool(heap) and heap[0][0] <= self.now

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while heap:
            event = heap[0][3]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    @property
    def events_processed(self) -> int:
        """Total logical events executed so far (for tests and profiling).

        Batched fan-out events (see :meth:`credit_events`) count once per
        delivered callback, so the number — and the events/sec the perf
        harness derives from it — is comparable across scheduling layouts.
        """
        return self._events_processed

    def credit_events(self, n: int) -> None:
        """Count ``n`` extra logical events inside a batched event.

        The medium delivers one frame edge to all receivers from a single
        heap event; crediting the batch keeps ``events_processed`` equal to
        the per-receiver-event layout it replaced.
        """
        self._events_processed += n

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live
