"""A small, fast discrete-event engine.

The engine is callback-based: consumers schedule ``fn(*args)`` at an absolute
or relative simulated time and may cancel the returned :class:`Event`. Ties
are broken by an explicit priority, then by scheduling order, which gives the
deterministic "end-of-frame before start-of-frame" semantics the radio model
relies on for back-to-back virtual-packet frames.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, Callable, List, Optional


class Priority(IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Lower runs first. Frame ends must be processed before frame starts at the
    same timestamp so a radio finalises one reception before the next
    back-to-back frame arrives.
    """

    FRAME_END = 0
    NORMAL = 1
    FRAME_START = 2
    LATE = 3


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state}, fn={self.fn!r})"


class Simulator:
    """Event queue with a monotonically advancing clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, priority, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event. Returns False when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so measurement windows are
        well-defined.
        """
        if until is None:
            while self.step():
                pass
            return
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > until:
                break
            self.step()
        self.now = max(self.now, until)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def events_processed(self) -> int:
        """Total events executed so far (for tests and profiling)."""
        return self._events_processed

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
