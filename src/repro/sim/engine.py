"""A small, fast discrete-event engine.

The engine is callback-based: consumers schedule ``fn(*args)`` at an absolute
or relative simulated time and may cancel the returned :class:`Event`. Ties
are broken by an explicit priority, then by scheduling order, which gives the
deterministic "end-of-frame before start-of-frame" semantics the radio model
relies on for back-to-back virtual-packet frames.

Hot-path notes (every CMAP figure is millions of events, so this file is
deliberately tuned):

* The heap stores ``(time, priority, seq, event, fn, args)`` tuples so
  ``heapq`` compares at C speed without calling back into Python; ``seq``
  is unique, so comparison never reaches the trailing elements.
* :meth:`Simulator.schedule_call` and :meth:`Simulator.schedule_fanout`
  skip the :class:`Event` allocation for callbacks that are never cancelled
  (the medium's per-frame fan-out batches, whose receiver entries are
  build-time-specialized ``fn(tx)`` closures — see
  :meth:`repro.phy.medium.Medium.transmit`), while :meth:`schedule` still
  returns a cancellable handle.
* ``schedule`` builds and pushes its entry directly instead of delegating to
  ``schedule_at``, and ``run`` inlines the pop loop instead of calling
  ``step`` per event.
* A live-event counter makes :meth:`pending_count` O(1): pushes increment
  it, and exactly one of ``Event.cancel`` or event execution decrements it.
* :meth:`Simulator.call_later` / :meth:`call_at` park cancellable timers in
  a bucketed timer wheel beside the heap and return a re-armable
  :class:`TimerHandle`. Cancelled wheel entries are dropped in O(1) and
  never touch the main heap — the win for the MAC's cancel-heavy ack and
  window timers. See the merge-order rule below.

None of this changes scheduling order: the heap key is the same
``(time, priority, seq)`` triple as before, assigned in the same order.

Timer-wheel merge-order rule (the determinism contract): every wheel entry
keeps the ``(time, priority, seq)`` key it was assigned at arm time, and a
bucket is migrated into the main heap strictly before the run loop pops any
entry ordered after the bucket's start. The heap then interleaves migrated
and directly-scheduled entries by the same total order, so execution order
is byte-identical to a wheel-less engine — ``REPRO_TIMER_WHEEL=0`` forces
the wheel-less layout and the lockstep tests diff the two. The wheel is
also disabled under the ``native`` kernel backend, whose compiled run loop
drains the heap only.
"""

from __future__ import annotations

import heapq
import itertools
import os
from enum import IntEnum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.kernels import backend as _kernels_backend

#: Environment switch for the timer wheel (default on). ``0`` forces every
#: ``call_later``/``call_at`` straight onto the heap — the legacy layout —
#: which the lockstep twin-engine tests use as the reference ordering.
#: The default was re-examined at N>=400-timer scale (the measurement
#: BENCH_pr9_mac.json deferred; recorded in BENCH_pr10_wheel.json): the
#: layouts split by workload shape, not by N — fire-dominated churn runs
#: ~1.05-1.2x faster all-heap, while cancel-dominated churn (the regime
#: the wheel exists for) runs ~1.4x faster wheel-on — so the flip
#: condition "N>=400 measurements agree" failed and the default stays on.
WHEEL_ENV_VAR = "REPRO_TIMER_WHEEL"

#: Wheel bucket granularity. A power of two so ``time * _INV_GRAN`` is an
#: exact exponent shift: the floor never rounds across a bucket boundary,
#: hence every entry's time is >= its bucket's start and the flush rule in
#: the module docstring is airtight. 1/16384 s ~= 61 microseconds — a few
#: slot-times wide, so back-to-back MAC timers land in O(1) buckets.
_GRAN = 1.0 / 16384.0
_INV_GRAN = 16384.0

#: Hybrid insert threshold: a timer whose delay is shorter than two bucket
#: spans goes straight to the main heap. Sub-bucket timers (DCF slot/DIFS,
#: SIFS turnarounds) would land in an already-due bucket and be migrated on
#: the very next pop — paying dict + bucket-heap traffic for nothing —
#: while the wheel's wins (cancels that never touch the heap, in-place
#: reschedule) need the bucket to stay parked for a while. Two spans
#: guarantees the bucket start is strictly in the future. The split is
#: invisible to event order: entries carry arm-time (time, prio, seq) keys
#: in either container.
_WHEEL_MIN_DELAY = 2.0 * _GRAN

_INF = float("inf")

_GUARD_MSG = (
    "same-instant event scheduled below FRAME_START priority "
    "after an inline fan-out delivery at this instant; this "
    "would break deterministic event ordering"
)


class Priority(IntEnum):
    """Tie-break order for events scheduled at the same instant.

    Lower runs first. Frame ends must be processed before frame starts at the
    same timestamp so a radio finalises one reception before the next
    back-to-back frame arrives.
    """

    FRAME_END = 0
    NORMAL = 1
    FRAME_START = 2
    LATE = 3


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Back-reference for O(1) live-event accounting; cleared when the
        #: event fires or is cancelled so neither path double-counts.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            self._sim = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state}, fn={self.fn!r})"


class TimerHandle:
    """A cancellable, re-armable timer returned by ``call_later``/``call_at``.

    Heap-entry-compatible with :class:`Event` (``cancelled``/``_sim``
    carry the same semantics, and both run loops — interpreted and
    compiled — treat the two identically), plus:

    * ``cancel()`` is O(1) and, while the entry still sits in the wheel,
      the entry never reaches the main heap at all.
    * :meth:`reschedule` re-arms the timer without allocating a new handle
      in the common cases (fired, or still parked in the wheel). A stale
      wheel entry is invalidated by its ``seq``: the handle's ``seq``
      moves on re-arm, and bucket migration drops entries whose recorded
      seq no longer matches.

    Reuse contract: ``reschedule`` returns the live handle, which is
    *usually* ``self`` but is a fresh handle when the pending entry has
    already migrated to the main heap (or was cancelled after migrating,
    or the wheel is disabled) — a heap entry cannot be retargeted in
    place without risking a stale-entry double fire. Callers must always
    rebind: ``h = h.reschedule(d)``.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "fn",
        "args",
        "cancelled",
        "_sim",
        "_simref",
        "_flushed",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., None],
        args: tuple,
        sim: "Simulator",
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Same contract as Event._sim: non-None exactly while pending;
        #: cleared by fire or cancel so _live is decremented exactly once.
        self._sim = sim
        #: Permanent back-reference so a fired handle can re-arm itself.
        self._simref = sim
        #: True once the entry has been pushed onto the main heap (at arm
        #: time when the wheel is disabled, else at bucket migration).
        self._flushed = False

    def cancel(self) -> None:
        """Prevent the timer from firing (no-op if it already fired)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            self._sim = None

    @property
    def pending(self) -> bool:
        """True while armed and not yet fired or cancelled."""
        return self._sim is not None

    def reschedule(self, delay: float) -> "TimerHandle":
        """Re-arm ``delay`` seconds from now; returns the live handle.

        A fired handle and a handle still parked in the wheel are revived
        or retargeted in place — no allocation; its stale wheel entry dies
        by seq mismatch. Once the pending entry sits in the main heap
        (including every arm while the wheel is disabled, and a cancel
        that raced the migration) the handle cannot be reused safely, so a
        fresh one is armed and returned. Always rebind the result.
        """
        sim = self._simref
        if self._flushed and (self._sim is not None or self.cancelled):
            # The (possibly stale) entry is in the main heap and holds this
            # very object; reviving it would re-arm that entry too.
            self.cancel()
            return sim.call_later(
                delay, self.fn, *self.args, priority=self.priority
            )
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = sim.now + delay
        if time == sim._inline_guard_time and self.priority < _PRIO_START:
            raise RuntimeError(_GUARD_MSG)
        if self._sim is None:
            self.cancelled = False
            self._sim = sim
            sim._live += 1
        self.time = time
        self.seq = seq = sim._next_seq()
        # Wheel insert, inlined from Simulator._timer_insert: this is the
        # hottest arm path in the system (every MAC re-arm lands here), and
        # the extra call frame is measurable on fig12-class runs.
        entry = (time, self.priority, seq, self, self.fn, self.args)
        if not sim._wheel_enabled or time - sim.now < _WHEEL_MIN_DELAY:
            self._flushed = True
            heapq.heappush(sim._heap, entry)
            return self
        self._flushed = False
        idx = int(time * _INV_GRAN)
        bucket = sim._buckets.get(idx)
        if bucket is None:
            sim._buckets[idx] = [entry]
            heapq.heappush(sim._bucket_heap, idx)
            start = idx * _GRAN
            if start < sim._wheel_next:
                sim._wheel_next = start
        else:
            bucket.append(entry)
        sim._wheel_count += 1
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.cancelled:
            state = "cancelled"
        elif self._sim is None:
            state = "fired"
        else:
            state = "wheel" if not self._flushed else "heap"
        return (
            f"TimerHandle(t={self.time:.9f}, prio={self.priority}, "
            f"{state}, fn={self.fn!r})"
        )


#: Heap entry layout: (time, priority, seq, event-or-None, fn, args). The
#: event slot is None for uncancellable schedule_call entries.
_Entry = Tuple[float, int, int, Optional[Event], Callable[..., None], tuple]

#: Plain-int copies of the fan-out priorities (avoids enum attribute lookups
#: on the per-frame path; compare equal to their Priority counterparts).
_PRIO_START = int(Priority.FRAME_START)
_PRIO_END = int(Priority.FRAME_END)


class Simulator:
    """Event queue with a monotonically advancing clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    #: Slotted: ``sim.now`` (and the heap/counter fields) are read on every
    #: event and every receive-path callback; slot descriptors skip the
    #: instance-dict hash on each access.
    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_next_seq",
        "_events_processed",
        "_live",
        "_inline_guard_time",
        "_buckets",
        "_bucket_heap",
        "_wheel_next",
        "_wheel_count",
        "_wheel_enabled",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._events_processed = 0
        self._live = 0
        #: While sim-time equals this value, scheduling at the current
        #: instant with priority below FRAME_START raises: the medium has
        #: already delivered this instant's frame-start batch inline, and
        #: such an event would have run before it in the heap layout.
        self._inline_guard_time = -1.0
        #: Timer wheel: bucket-index -> list of heap-shaped entries, plus a
        #: min-heap of occupied bucket indices. ``_wheel_next`` caches the
        #: earliest occupied bucket's start time (inf when empty) so the
        #: run loop's wheel check is a single float compare.
        self._buckets: Dict[int, List[_Entry]] = {}
        self._bucket_heap: List[int] = []
        self._wheel_next = _INF
        #: Raw entry count currently parked in the wheel (stale entries
        #: included); folded into the inline-fan-out depth snapshot.
        self._wheel_count = 0
        #: The compiled run loop drains the heap only, so the wheel turns
        #: off under the native backend; REPRO_TIMER_WHEEL=0 forces the
        #: legacy all-heap layout for the lockstep twin-engine tests.
        self._wheel_enabled = (
            os.environ.get(WHEEL_ENV_VAR, "1") != "0"
            and not _kernels_backend.get_backend().native_run_loop
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Legacy shim: kept for back-compat (and for the non-timer layers
        that never cancel). New cancel-or-re-arm timer sites should use
        :meth:`call_later`, which parks the entry in the timer wheel and
        returns a reusable :class:`TimerHandle`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        event = Event(time, priority, seq, fn, args, self)
        heapq.heappush(self._heap, (time, priority, seq, event, fn, args))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        event = Event(time, priority, seq, fn, args, self)
        heapq.heappush(self._heap, (time, priority, seq, event, fn, args))
        self._live += 1
        return event

    def call_later(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> TimerHandle:
        """Arm a timer for ``fn(*args)`` ``delay`` seconds from now.

        Same ordering semantics as :meth:`schedule` — the entry gets the
        next ``(time, priority, seq)`` key — but the entry parks in the
        timer wheel (O(1) insert, and cancelled timers never reach the
        main heap) and the returned :class:`TimerHandle` supports
        ``reschedule`` without reallocation.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(_GUARD_MSG)
        seq = self._next_seq()
        handle = TimerHandle(time, priority, seq, fn, args, self)
        self._live += 1
        self._timer_insert((time, priority, seq, handle, fn, args))
        return handle

    def call_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = Priority.NORMAL,
    ) -> TimerHandle:
        """Arm a timer at absolute simulated ``time`` (see :meth:`call_later`)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(_GUARD_MSG)
        seq = self._next_seq()
        handle = TimerHandle(time, priority, seq, fn, args, self)
        self._live += 1
        self._timer_insert((time, priority, seq, handle, fn, args))
        return handle

    def _timer_insert(self, entry: _Entry) -> None:
        """Park a timer entry in the wheel (or the heap when disabled).

        Sub-bucket delays skip the wheel entirely — see _WHEEL_MIN_DELAY.
        """
        handle = entry[3]
        if not self._wheel_enabled or entry[0] - self.now < _WHEEL_MIN_DELAY:
            handle._flushed = True
            heapq.heappush(self._heap, entry)
            return
        handle._flushed = False
        idx = int(entry[0] * _INV_GRAN)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [entry]
            heapq.heappush(self._bucket_heap, idx)
            start = idx * _GRAN
            if start < self._wheel_next:
                self._wheel_next = start
        else:
            bucket.append(entry)
        self._wheel_count += 1

    def _wheel_flush_until(self, limit: float) -> None:
        """Migrate every bucket whose span starts at or before ``limit``.

        Entries keep their arm-time ``(time, priority, seq)`` keys, so the
        main heap interleaves them with directly-scheduled entries in the
        exact order a wheel-less engine would have used (the merge-order
        rule). Stale entries — cancelled, or orphaned by a ``reschedule``
        that moved the handle's seq — are dropped here and never touch the
        heap; their ``_live`` accounting already happened.
        """
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        heap = self._heap
        push = heapq.heappush
        pop = heapq.heappop
        while bucket_heap and bucket_heap[0] * _GRAN <= limit:
            bucket = buckets.pop(pop(bucket_heap))
            self._wheel_count -= len(bucket)
            for entry in bucket:
                handle = entry[3]
                if handle.cancelled or handle.seq != entry[2]:
                    continue
                handle._flushed = True
                push(heap, entry)
        self._wheel_next = bucket_heap[0] * _GRAN if bucket_heap else _INF

    def schedule_call(
        self,
        delay: float,
        fn: Callable[..., None],
        args: tuple = (),
        priority: int = Priority.NORMAL,
    ) -> None:
        """Fast-path schedule with no cancellation handle.

        Identical ordering semantics to :meth:`schedule`, but no
        :class:`Event` is allocated, so the callback cannot be cancelled.
        Used by the medium's per-frame fan-out, which never cancels.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if time == self._inline_guard_time and priority < _PRIO_START:
            raise RuntimeError(
                "same-instant event scheduled below FRAME_START priority "
                "after an inline fan-out delivery at this instant; this "
                "would break deterministic event ordering"
            )
        seq = self._next_seq()
        heapq.heappush(
            self._heap, (time, priority, seq, None, fn, args)
        )
        self._live += 1

    def schedule_fanout(
        self,
        end_delay: float,
        start_fn: Optional[Callable[..., None]],
        start_args: tuple,
        end_fn: Callable[..., None],
        end_args: tuple,
    ) -> None:
        """Schedule one frame's two fan-out events in a single call.

        ``start_fn(*start_args)`` runs now at FRAME_START priority (skipped
        when ``start_fn`` is None — a frame with no receivers), and
        ``end_fn(*end_args)`` runs ``end_delay`` seconds later at FRAME_END
        priority. Sequence numbers are assigned start-then-end, exactly as
        two consecutive ``schedule`` calls would. Neither event is
        cancellable.
        """
        now = self.now
        next_seq = self._next_seq
        heap = self._heap
        push = heapq.heappush
        if start_fn is not None:
            push(heap, (now, _PRIO_START, next_seq(), None, start_fn, start_args))
            self._live += 2
        else:
            self._live += 1
        push(
            heap,
            (now + end_delay, _PRIO_END, next_seq(), None, end_fn, end_args),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event. Returns False when drained."""
        heap = self._heap
        while True:
            if heap:
                if self._wheel_next <= heap[0][0]:
                    self._wheel_flush_until(heap[0][0])
                entry = heapq.heappop(heap)
            else:
                wheel_next = self._wheel_next
                if wheel_next == _INF:
                    return False
                self._wheel_flush_until(wheel_next)
                continue
            event = entry[3]
            if event is not None:
                if event.cancelled:
                    continue
                event._sim = None
            self.now = entry[0]
            self._events_processed += 1
            self._live -= 1
            entry[4](*entry[5])
            return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so measurement windows are
        well-defined.

        The kernel backend may supply a compiled drain loop (the ``native``
        backend's C kernel); it executes the same pops in the same order
        with the same counter semantics, so which loop ran is unobservable
        in the outputs.
        """
        loop = _kernels_backend.active_run_loop()
        if loop is not None:
            if self._bucket_heap:
                # Defensive: the wheel disables itself under the native
                # backend, but a mid-process backend switch could leave
                # parked timers — the compiled loop sees the heap only.
                self._wheel_flush_until(_INF)
            loop(self, until)
            return
        heap = self._heap
        pop = heapq.heappop
        # The per-event counter increments are batched into a local and
        # written back on exit; callbacks that credit batched deliveries
        # add to the attribute directly, which commutes with the write-back.
        # The wheel check per pop is one slot load and a float compare
        # (_wheel_next stays inf whenever the wheel is empty or disabled).
        n = 0
        if until is None:
            try:
                while True:
                    if heap:
                        if self._wheel_next <= heap[0][0]:
                            self._wheel_flush_until(heap[0][0])
                        entry = pop(heap)
                    else:
                        wheel_next = self._wheel_next
                        if wheel_next == _INF:
                            break
                        self._wheel_flush_until(wheel_next)
                        continue
                    event = entry[3]
                    if event is not None:
                        if event.cancelled:
                            continue
                        event._sim = None
                    self.now = entry[0]
                    n += 1
                    self._live -= 1
                    entry[4](*entry[5])
            finally:
                self._events_processed += n
            return
        try:
            while True:
                if not heap:
                    wheel_next = self._wheel_next
                    if wheel_next == _INF or wheel_next > until:
                        break
                    self._wheel_flush_until(wheel_next)
                    continue
                entry = heap[0]
                t = entry[0]
                if self._wheel_next <= t:
                    self._wheel_flush_until(t)
                    continue
                event = entry[3]
                if event is not None and event.cancelled:
                    pop(heap)
                    continue
                if t > until:
                    break
                pop(heap)
                if event is not None:
                    event._sim = None
                self.now = t
                n += 1
                self._live -= 1
                entry[4](*entry[5])
        finally:
            self._events_processed += n
        self.now = max(self.now, until)

    def deliver_fanout_inline(self, start_fns: tuple, tx: Any) -> bool:
        """Deliver a frame-start batch inline when nothing pends at now.

        The per-frame fast path, calling each specialized receiver entry
        as ``fn(tx)``. Returns False when an entry is queued at the
        current instant — the caller must then round-trip the batch
        through the heap to preserve ordering. Before the first callback
        the ordering guard arms: until sim-time advances, any schedule at
        this instant with priority below FRAME_START raises instead of
        silently diverging from the heap layout (where it would have run
        before the batch). The raw heap depth — which grows by exactly one
        per ``schedule*`` call and never shrinks outside the run loop — is
        snapshotted around the loop to detect scheduling from inside the
        delivered callbacks, and the batch credits one logical event per
        delivered callback, exactly as the heap-scheduled batch would.
        """
        if self._wheel_next <= self.now:
            self._wheel_flush_until(self.now)
        heap = self._heap
        if heap and heap[0][0] <= self.now:
            return False
        self._inline_guard_time = self.now
        # Wheel arms don't grow the heap, so the depth snapshot folds in
        # the raw wheel-entry count (which only flush — never reached from
        # inside a frame-start callback — decrements).
        depth = len(heap) + self._wheel_count
        for fn in start_fns:
            fn(tx)
        if len(heap) + self._wheel_count != depth:
            raise RuntimeError(
                "a frame-start callback scheduled an event during inline "
                "fan-out delivery; this breaks deterministic event "
                "ordering — react from frame-end or MAC timers instead"
            )
        self._events_processed += len(start_fns)
        return True

    def pending_at_now(self) -> bool:
        """True when any queued entry could still run at the current instant.

        Conservative: cancelled entries count (they only make the caller
        fall back to the scheduled path). This is the same test
        :meth:`deliver_fanout_inline` applies before delivering a
        same-instant fan-out batch inline.
        """
        if self._wheel_next <= self.now:
            self._wheel_flush_until(self.now)
        heap = self._heap
        return bool(heap) and heap[0][0] <= self.now

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        heap = self._heap
        while True:
            while heap:
                event = heap[0][3]
                if event is not None and event.cancelled:
                    heapq.heappop(heap)
                    continue
                break
            wheel_next = self._wheel_next
            if wheel_next == _INF:
                return heap[0][0] if heap else None
            if heap and heap[0][0] < wheel_next:
                return heap[0][0]
            self._wheel_flush_until(heap[0][0] if heap else wheel_next)

    @property
    def events_processed(self) -> int:
        """Total logical events executed so far (for tests and profiling).

        Batched fan-out events (see :meth:`credit_events`) count once per
        delivered callback, so the number — and the events/sec the perf
        harness derives from it — is comparable across scheduling layouts.
        """
        return self._events_processed

    def credit_events(self, n: int) -> None:
        """Count ``n`` extra logical events inside a batched event.

        The medium delivers one frame edge to all receivers from a single
        heap event; crediting the batch keeps ``events_processed`` equal to
        the per-receiver-event layout it replaced.
        """
        self._events_processed += n

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def timer_wheel_enabled(self) -> bool:
        """Whether ``call_later``/``call_at`` park entries in the wheel."""
        return self._wheel_enabled
