"""Discrete-event simulation engine (simpy is not available offline)."""

from repro.sim.engine import Event, Simulator, Priority

__all__ = ["Event", "Simulator", "Priority"]
