"""Discrete-event simulation engine (simpy is not available offline)."""

from repro.sim.engine import Event, Simulator, Priority, TimerHandle

__all__ = ["Event", "Simulator", "Priority", "TimerHandle"]
