"""Command-line entry point: regenerate any paper figure from a shell.

Usage::

    python -m repro.cli fig12 --scale smoke
    python -m repro.cli fig17 --scale quick --seed 3
    python -m repro.cli fig12 --scale paper --jobs 8 --out fig12.json
    python -m repro.cli fig12 --scale paper --jobs 8 --out fig12.json --resume
    python -m repro.cli census
    python -m repro.cli map --regions
    python -m repro.cli all --scale smoke
    python -m repro.cli mobility --scale smoke
    python -m repro.cli churn --scale smoke
    python -m repro.cli scale --scale smoke --jobs 2
    python -m repro.cli bench --scale smoke
    python -m repro.cli bench --scale smoke --figures fig12,mobility --out-dir bench
    python -m repro.cli profile --scale smoke
    python -m repro.cli profile --scale smoke --figures fig12 --out-dir prof
    python -m repro.cli serve --port 8642 --data-dir sweep-data
    python -m repro.cli submit --builder fig12 --scale smoke --tail
    python -m repro.cli tail <job-id>
    python -m repro.cli runs --experiment fig12 --metric total_mbps

Figures print the same rows/series the paper reports (see EXPERIMENTS.md
for the side-by-side record). ``--scale`` trades fidelity for wall time;
``--jobs N`` fans independent trials out over N worker processes (results
are bit-identical to serial); ``--out``/``--resume`` persist completed
trials to JSON so an interrupted sweep picks up where it left off.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro import perf
from repro.experiments import report
from repro.experiments.executor import ResultStore, SerialBackend, make_backend
from repro.experiments.runners import (
    ExperimentScale,
    run_ap_topology,
    run_bitrate_sweep,
    run_churn_sweep,
    run_exposed_terminals,
    run_header_trailer_cdf,
    run_header_trailer_density,
    run_hidden_interferer_scatter,
    run_hidden_terminals,
    run_inrange_senders,
    run_mesh_dissemination,
    run_mobility_sweep,
    run_scale_sweep,
    run_single_link_calibration,
)
from repro.net.testbed import Testbed


def _scale(name: str) -> ExperimentScale:
    try:
        return ExperimentScale.preset(name)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))


def _figures() -> Dict[str, Callable]:
    """Figure id -> callable producing the printed report.

    Every callable takes (testbed, scale, backend, store); the backend and
    store thread straight through to the shared trial executor.
    """

    def calibration(tb, scale, backend, store):
        return report.render_calibration(
            run_single_link_calibration(tb, scale, backend=backend, store=store)
        )

    def fig12(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_exposed_terminals(tb, scale, backend=backend, store=store),
            "Fig. 12 — exposed terminals",
        )

    def fig13(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_inrange_senders(tb, scale, backend=backend, store=store),
            "Fig. 13 — senders in range",
        )

    def fig14(tb, scale, backend, store):
        return report.render_hidden_interferer(
            run_hidden_interferer_scatter(tb, scale, backend=backend, store=store)
        )

    def fig15(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_hidden_terminals(tb, scale, backend=backend, store=store),
            "Fig. 15 — hidden terminals",
        )

    def fig16(tb, scale, backend, store):
        return report.render_ht_cdf(
            run_header_trailer_cdf(tb, scale, backend=backend, store=store)
        )

    def fig17(tb, scale, backend, store):
        return report.render_ap(
            run_ap_topology(tb, scale, backend=backend, store=store)
        )

    def fig19(tb, scale, backend, store):
        return report.render_ht_density(
            run_header_trailer_density(tb, scale, backend=backend, store=store)
        )

    def fig20(tb, scale, backend, store):
        return report.render_bitrate_sweep(
            run_bitrate_sweep(tb, scale, backend=backend, store=store)
        )

    def mesh(tb, scale, backend, store):
        return report.render_mesh(
            run_mesh_dissemination(
                tb, scale, include_extensions=True, backend=backend, store=store
            )
        )

    def mobility(tb, scale, backend, store):
        return report.render_mobility(
            run_mobility_sweep(tb, scale, backend=backend, store=store)
        )

    def churn(tb, scale, backend, store):
        return report.render_churn(
            run_churn_sweep(tb, scale, backend=backend, store=store)
        )

    def scale_sweep(tb, scale, backend, store):
        # Generates its own constant-density worlds (one per topology x N);
        # only the seed is taken from the shared testbed.
        return report.render_scale(
            run_scale_sweep(scale=scale, seed=tb.seed, backend=backend,
                            store=store)
        )

    return {
        "calibration": calibration,
        "fig12": fig12,
        "fig13": fig13,
        "fig14": fig14,
        "fig15": fig15,
        "fig16": fig16,
        "fig17": fig17,
        "fig18": fig17,  # same runner; Fig. 18 is the per-sender view
        "fig19": fig19,
        "fig20": fig20,
        "mesh": mesh,
        "mobility": mobility,
        "churn": churn,
        "scale": scale_sweep,
    }


def run_bench(args, figures) -> int:
    """Time figure regenerations and emit a BENCH_*.json trajectory point.

    The benchmark always uses the serial backend: worker processes would
    execute their events where the recorder cannot see them. Testbed
    construction (including link classification) happens before timing, so
    the reported events/sec reflects the event core rather than setup cost.
    """
    env_jobs = os.environ.get("REPRO_JOBS")
    if (args.jobs and args.jobs > 1) or (env_jobs and env_jobs != "1"):
        print("[bench ignores --jobs/REPRO_JOBS: worker processes execute "
              "their events where the recorder cannot see them; running "
              "serial]")
    # Validate figure names before paying for testbed construction.
    names = [f.strip() for f in args.figures.split(",") if f.strip()]
    if not names:
        raise SystemExit(
            f"--figures named no figures; pick from {sorted(figures)}"
        )
    for name in names:
        if name not in figures:
            raise SystemExit(
                f"unknown figure {name!r}; pick from {sorted(figures)}"
            )
    testbed = Testbed(seed=args.seed)
    # The link table is lazy; force the O(N^2) census now so it stays
    # setup cost (per this function's contract) instead of being charged
    # to the first timed figure that touches it.
    testbed.links
    scale = _scale(args.scale)
    backend = SerialBackend()

    results = []
    for name in names:
        print(f"=== bench {name} (scale={args.scale}, seed={args.seed}, "
              f"best of {args.repeat}) ===")
        bench = perf.bench_figure(
            name,
            lambda n=name: figures[n](testbed, scale, backend, None),
            repeat=args.repeat,
        )
        print(f"  {bench.wall_seconds:.2f}s wall, {bench.events} events, "
              f"{bench.events_per_sec:.0f} events/s, "
              f"{bench.trials} trials ({bench.trials_per_sec:.2f}/s)")
        results.append(bench)

    baseline = perf.load_bench_file(args.baseline)
    comparison = perf.bench_payload(results, args.scale, args.seed, baseline)
    if args.write_baseline:
        # A baseline must be a clean measurement: no embedded previous
        # baseline, no speedup-vs-itself keys.
        clean = perf.bench_payload(results, args.scale, args.seed)
        path = perf.write_bench_file(
            clean, os.path.dirname(args.baseline) or ".",
            os.path.basename(args.baseline),
        )
    else:
        path = perf.write_bench_file(comparison, args.out_dir)
    print()
    print(perf.format_bench_table(results, comparison.get("speedup_events_per_sec")))
    if baseline is None and not args.write_baseline:
        print(f"[no baseline at {args.baseline}; speedup column omitted]")
    print(f"[wrote {path}]")
    return 0


def run_profile(args, figures) -> int:
    """cProfile figure regenerations and emit a PROFILE_*.json breakdown.

    Serial backend for the same reason as bench: worker processes would
    execute their events outside the profiler. Profiling is observational
    — outputs stay bit-identical — so the attribution describes exactly
    the run the goldens pin.
    """
    names = [f.strip() for f in args.figures.split(",") if f.strip()]
    if not names:
        raise SystemExit(
            f"--figures named no figures; pick from {sorted(figures)}"
        )
    for name in names:
        if name not in figures:
            raise SystemExit(
                f"unknown figure {name!r}; pick from {sorted(figures)}"
            )
    testbed = Testbed(seed=args.seed)
    testbed.links  # setup cost, not attributed to the profiled figure
    scale = _scale(args.scale)
    backend = SerialBackend()

    profiles = []
    for name in names:
        print(f"=== profile {name} (scale={args.scale}, seed={args.seed}) ===")
        profile = perf.profile_figure(
            name,
            lambda n=name: figures[n](testbed, scale, backend, None),
        )
        print(perf.format_profile_table(profile))
        profiles.append(profile)

    payload = perf.profile_payload(profiles, args.scale, args.seed)
    path = perf.write_profile_file(payload, args.out_dir)
    print(f"[wrote {path}]")
    return 0


#: Targets served by the sweep service CLI (repro.service.cli), which has
#: its own argument surface; dispatched before the figure parser runs.
SERVICE_TARGETS = ("serve", "work", "submit", "tail", "runs", "chaos")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in SERVICE_TARGETS:
        from repro.service.cli import main as service_main

        return service_main(argv)
    figures = _figures()
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        choices=sorted(figures) + ["census", "map", "all", "bench", "profile"],
        help="figure to regenerate, census/map/all, bench, or profile "
             "(serve/submit/tail/runs/chaos dispatch to the sweep "
             "service CLI)",
    )
    parser.add_argument("--scale", default="smoke",
                        help="smoke | quick | paper (default smoke)")
    parser.add_argument("--seed", type=int, default=1,
                        help="testbed seed (default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for trial execution "
                             "(default 1 = serial; output is identical)")
    parser.add_argument("--out", metavar="PATH",
                        help="persist per-trial results to this JSON file")
    parser.add_argument("--resume", action="store_true",
                        help="with --out: skip trials already in the file")
    parser.add_argument("--regions", action="store_true",
                        help="with 'map': draw the §5.6 region boundaries")
    parser.add_argument("--figures", default="fig12",
                        help="with 'bench'/'profile': comma-separated "
                             "figures to measure (default fig12)")
    parser.add_argument("--out-dir", default=".",
                        help="with 'bench'/'profile': directory for the "
                             "emitted BENCH_*/PROFILE_*.json (default cwd)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="with 'bench': time each figure N times and "
                             "report the fastest (default 1)")
    parser.add_argument("--baseline", default=perf.DEFAULT_BASELINE,
                        help="with 'bench': baseline BENCH file to compare "
                             f"against (default {perf.DEFAULT_BASELINE})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="with 'bench': (over)write the baseline file "
                             "instead of a timestamped BENCH file")
    parser.add_argument("--kernel-backend", default=None,
                        metavar="NAME",
                        help="kernel backend for this run (python | scalar "
                             "| native); same as REPRO_KERNEL_BACKEND, and "
                             "recorded into BENCH/PROFILE payloads")
    args = parser.parse_args(argv)

    if args.kernel_backend is not None:
        from repro.kernels.backend import set_backend

        set_backend(args.kernel_backend)

    if args.target == "bench":
        return run_bench(args, figures)

    if args.target == "profile":
        return run_profile(args, figures)

    testbed = Testbed(seed=args.seed)

    if args.target == "census":
        census = testbed.links.census()
        print("testbed census (paper §5.1: 68 % / 12 % / 20 %, degree 15.2/17)")
        print(f"  connected directed pairs : {census.connected_pairs}")
        print(f"  PRR < 0.1                : {census.frac_prr_below_01:.1%}")
        print(f"  0.1 <= PRR < 1           : {census.frac_prr_mid:.1%}")
        print(f"  PRR ~ 1                  : {census.frac_prr_perfect:.1%}")
        print(f"  mean / median degree     : {census.mean_degree:.1f} / "
              f"{census.median_degree:.0f}")
        return 0

    if args.target == "map":
        from repro.net.visualize import render_floor

        print(render_floor(testbed, show_regions=args.regions))
        return 0

    if args.resume and not args.out:
        raise SystemExit("--resume requires --out")

    scale = _scale(args.scale)
    backend = make_backend(args.jobs)
    store = None
    if args.out:
        if not args.resume and os.path.exists(args.out):
            raise SystemExit(
                f"{args.out} exists; pass --resume to continue it or remove it"
            )
        try:
            store = ResultStore(args.out, testbed_seed=args.seed)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.resume and len(store):
            print(f"[resuming from {args.out}: {len(store)} trials cached]")

    targets = sorted(figures) if args.target == "all" else [args.target]
    for name in targets:
        t0 = time.time()
        print(f"=== {name} (scale={args.scale}, seed={args.seed}, "
              f"jobs={args.jobs}) ===")
        print(figures[name](testbed, scale, backend, store))
        print(f"[{time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
