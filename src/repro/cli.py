"""Command-line entry point: regenerate any paper figure from a shell.

Usage::

    python -m repro.cli fig12 --scale smoke
    python -m repro.cli fig17 --scale quick --seed 3
    python -m repro.cli fig12 --scale paper --jobs 8 --out fig12.json
    python -m repro.cli fig12 --scale paper --jobs 8 --out fig12.json --resume
    python -m repro.cli census
    python -m repro.cli map --regions
    python -m repro.cli all --scale smoke

Figures print the same rows/series the paper reports (see EXPERIMENTS.md
for the side-by-side record). ``--scale`` trades fidelity for wall time;
``--jobs N`` fans independent trials out over N worker processes (results
are bit-identical to serial); ``--out``/``--resume`` persist completed
trials to JSON so an interrupted sweep picks up where it left off.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import report
from repro.experiments.executor import ResultStore, make_backend
from repro.experiments.runners import (
    ExperimentScale,
    run_ap_topology,
    run_bitrate_sweep,
    run_exposed_terminals,
    run_header_trailer_cdf,
    run_header_trailer_density,
    run_hidden_interferer_scatter,
    run_hidden_terminals,
    run_inrange_senders,
    run_mesh_dissemination,
    run_single_link_calibration,
)
from repro.net.testbed import Testbed


def _scale(name: str) -> ExperimentScale:
    presets = {
        "smoke": ExperimentScale.smoke,
        "quick": ExperimentScale.quick,
        "paper": ExperimentScale.paper,
    }
    if name not in presets:
        raise SystemExit(f"unknown scale {name!r}; pick from {sorted(presets)}")
    return presets[name]()


def _figures() -> Dict[str, Callable]:
    """Figure id -> callable producing the printed report.

    Every callable takes (testbed, scale, backend, store); the backend and
    store thread straight through to the shared trial executor.
    """

    def calibration(tb, scale, backend, store):
        return report.render_calibration(
            run_single_link_calibration(tb, scale, backend=backend, store=store)
        )

    def fig12(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_exposed_terminals(tb, scale, backend=backend, store=store),
            "Fig. 12 — exposed terminals",
        )

    def fig13(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_inrange_senders(tb, scale, backend=backend, store=store),
            "Fig. 13 — senders in range",
        )

    def fig14(tb, scale, backend, store):
        return report.render_hidden_interferer(
            run_hidden_interferer_scatter(tb, scale, backend=backend, store=store)
        )

    def fig15(tb, scale, backend, store):
        return report.render_pair_cdf(
            run_hidden_terminals(tb, scale, backend=backend, store=store),
            "Fig. 15 — hidden terminals",
        )

    def fig16(tb, scale, backend, store):
        return report.render_ht_cdf(
            run_header_trailer_cdf(tb, scale, backend=backend, store=store)
        )

    def fig17(tb, scale, backend, store):
        return report.render_ap(
            run_ap_topology(tb, scale, backend=backend, store=store)
        )

    def fig19(tb, scale, backend, store):
        return report.render_ht_density(
            run_header_trailer_density(tb, scale, backend=backend, store=store)
        )

    def fig20(tb, scale, backend, store):
        return report.render_bitrate_sweep(
            run_bitrate_sweep(tb, scale, backend=backend, store=store)
        )

    def mesh(tb, scale, backend, store):
        return report.render_mesh(
            run_mesh_dissemination(
                tb, scale, include_extensions=True, backend=backend, store=store
            )
        )

    return {
        "calibration": calibration,
        "fig12": fig12,
        "fig13": fig13,
        "fig14": fig14,
        "fig15": fig15,
        "fig16": fig16,
        "fig17": fig17,
        "fig18": fig17,  # same runner; Fig. 18 is the per-sender view
        "fig19": fig19,
        "fig20": fig20,
        "mesh": mesh,
    }


def main(argv=None) -> int:
    figures = _figures()
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "target",
        choices=sorted(figures) + ["census", "map", "all"],
        help="figure to regenerate, or census/map/all",
    )
    parser.add_argument("--scale", default="smoke",
                        help="smoke | quick | paper (default smoke)")
    parser.add_argument("--seed", type=int, default=1,
                        help="testbed seed (default 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for trial execution "
                             "(default 1 = serial; output is identical)")
    parser.add_argument("--out", metavar="PATH",
                        help="persist per-trial results to this JSON file")
    parser.add_argument("--resume", action="store_true",
                        help="with --out: skip trials already in the file")
    parser.add_argument("--regions", action="store_true",
                        help="with 'map': draw the §5.6 region boundaries")
    args = parser.parse_args(argv)

    testbed = Testbed(seed=args.seed)

    if args.target == "census":
        census = testbed.links.census()
        print("testbed census (paper §5.1: 68 % / 12 % / 20 %, degree 15.2/17)")
        print(f"  connected directed pairs : {census.connected_pairs}")
        print(f"  PRR < 0.1                : {census.frac_prr_below_01:.1%}")
        print(f"  0.1 <= PRR < 1           : {census.frac_prr_mid:.1%}")
        print(f"  PRR ~ 1                  : {census.frac_prr_perfect:.1%}")
        print(f"  mean / median degree     : {census.mean_degree:.1f} / "
              f"{census.median_degree:.0f}")
        return 0

    if args.target == "map":
        from repro.net.visualize import render_floor

        print(render_floor(testbed, show_regions=args.regions))
        return 0

    if args.resume and not args.out:
        raise SystemExit("--resume requires --out")

    scale = _scale(args.scale)
    backend = make_backend(args.jobs)
    store = None
    if args.out:
        import os

        if not args.resume and os.path.exists(args.out):
            raise SystemExit(
                f"{args.out} exists; pass --resume to continue it or remove it"
            )
        try:
            store = ResultStore(args.out, testbed_seed=args.seed)
        except ValueError as exc:
            raise SystemExit(str(exc))
        if args.resume and len(store):
            print(f"[resuming from {args.out}: {len(store)} trials cached]")

    targets = sorted(figures) if args.target == "all" else [args.target]
    for name in targets:
        t0 = time.time()
        print(f"=== {name} (scale={args.scale}, seed={args.seed}, "
              f"jobs={args.jobs}) ===")
        print(figures[name](testbed, scale, backend, store))
        print(f"[{time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
