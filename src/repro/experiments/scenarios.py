"""Scenario selection: the topology constraints of Fig. 11 and §5.6–5.7.

Each finder enumerates node tuples from a testbed's link table that satisfy
the paper's constraints, then samples the requested number uniformly with a
seeded RNG — the analogue of the paper choosing "50 configurations at random
from all possible configurations".

Fig. 11's constraint vocabulary (all defined in §5.1, implemented by
:class:`repro.net.links.LinkTable`):

* *potential transmission link*: PRR > 0.9 both ways, signal above the 10th
  percentile — the only links data flows use;
* *in range*: PRR > 0.2 both ways, signal above the 10th percentile;
* *not in range*: PRR < 0.2 both ways;
* *strong signal*: at/above the 90th percentile network-wide;
* *weak signal*: below the 90th percentile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.net.links import LinkTable
from repro.net.testbed import Testbed


class ScenarioError(RuntimeError):
    """Raised when a testbed cannot supply a requested scenario."""


@dataclass(frozen=True)
class PairConfig:
    """Two sender->receiver pairs: (s1 -> r1) and (s2 -> r2)."""

    s1: int
    r1: int
    s2: int
    r2: int

    @property
    def nodes(self) -> Tuple[int, int, int, int]:
        return (self.s1, self.r1, self.s2, self.r2)

    @property
    def senders(self) -> Tuple[int, int]:
        return (self.s1, self.s2)

    @property
    def flows(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        return ((self.s1, self.r1), (self.s2, self.r2))


def _sample(items: List, count: int, rng: np.random.Generator) -> List:
    if not items:
        raise ScenarioError("no configurations satisfy the constraints")
    if count >= len(items):
        return list(items)
    idx = rng.choice(len(items), size=count, replace=False)
    return [items[i] for i in sorted(idx)]


def _potential_tx_links(links: LinkTable) -> List[Tuple[int, int]]:
    return [
        (a, b)
        for a, b in itertools.permutations(links.node_ids, 2)
        if links.potential_tx_link(a, b)
    ]


# ----------------------------------------------------------------------
# Fig. 11(a): exposed terminals (§5.2)
# ----------------------------------------------------------------------
def find_exposed_terminal_configs(
    testbed: Testbed,
    count: int,
    seed: int = 0,
    max_candidates: int = 200_000,
) -> List[PairConfig]:
    """Configurations satisfying Fig. 11(a):

    (i) senders in range of each other; (ii) each pair a potential
    transmission link; (iii) sender->its receiver strong (90th pct);
    (iv) every other inter-node signal weak (below 90th pct).
    """
    links = testbed.links
    strong_links = [
        (a, b) for a, b in _potential_tx_links(links) if links.strong_signal(a, b)
    ]
    out: List[PairConfig] = []
    for (s1, r1), (s2, r2) in itertools.permutations(strong_links, 2):
        if len({s1, r1, s2, r2}) != 4:
            continue
        if not links.in_range(s1, s2):
            continue
        cross = [(s1, r2), (s2, r1), (r1, r2), (r2, r1), (r1, s2), (r2, s1),
                 (s1, s2), (s2, s1)]
        if all(links.weak_signal(a, b) for a, b in cross):
            out.append(PairConfig(s1, r1, s2, r2))
            if len(out) >= max_candidates:
                break
    rng = testbed.rngs.fork("scenario", "exposed", seed).stream("sample")
    return _sample(out, count, rng)


# ----------------------------------------------------------------------
# Fig. 11(b): two senders in range, unconstrained cross links (§5.3)
# ----------------------------------------------------------------------
def find_inrange_configs(
    testbed: Testbed,
    count: int,
    seed: int = 0,
    max_candidates: int = 200_000,
) -> List[PairConfig]:
    """Configurations satisfying Fig. 11(b): senders in range, both pairs
    potential transmission links, no further constraints (some will be
    exposed terminals, some will conflict)."""
    links = testbed.links
    tx_links = _potential_tx_links(links)
    out: List[PairConfig] = []
    for (s1, r1), (s2, r2) in itertools.permutations(tx_links, 2):
        if len({s1, r1, s2, r2}) != 4:
            continue
        if links.in_range(s1, s2):
            out.append(PairConfig(s1, r1, s2, r2))
            if len(out) >= max_candidates:
                break
    rng = testbed.rngs.fork("scenario", "inrange", seed).stream("sample")
    return _sample(out, count, rng)


# ----------------------------------------------------------------------
# Fig. 11(c): hidden terminals (§5.5)
# ----------------------------------------------------------------------
def find_hidden_terminal_configs(
    testbed: Testbed,
    count: int,
    seed: int = 0,
    max_candidates: int = 200_000,
) -> List[PairConfig]:
    """Configurations satisfying Fig. 11(c): each receiver has a potential
    transmission link to *both* senders (so transmissions almost always
    interfere at the receivers) while the senders are not in range of each
    other (so they cannot defer)."""
    links = testbed.links
    out: List[PairConfig] = []
    ids = links.node_ids
    for s1, s2 in itertools.combinations(ids, 2):
        if not links.out_of_range(s1, s2):
            continue
        for r1, r2 in itertools.permutations(ids, 2):
            if len({s1, s2, r1, r2}) != 4:
                continue
            if (
                links.potential_tx_link(s1, r1)
                and links.potential_tx_link(s2, r1)
                and links.potential_tx_link(s1, r2)
                and links.potential_tx_link(s2, r2)
            ):
                out.append(PairConfig(s1, r1, s2, r2))
                if len(out) >= max_candidates:
                    break
        if len(out) >= max_candidates:
            break
    rng = testbed.rngs.fork("scenario", "hidden", seed).stream("sample")
    return _sample(out, count, rng)


def prr_at_rate(testbed: Testbed, a: int, b: int, mbps: int,
                probe_size_bytes: int = 1428) -> float:
    """Isolated analytic PRR of the link a->b at an arbitrary bit-rate.

    The link table is built at the base rate (the paper measures link
    quality at 6 Mb/s, §5.1); multi-rate experiments need the same channel
    re-evaluated against a higher rate's SINR requirement.
    """
    from repro.phy.modulation import RATES

    return testbed.fading.mean_prr(
        testbed.rss.rss(a, b),
        testbed.config.noise_dbm,
        RATES[mbps],
        probe_size_bytes,
        testbed.error_model,
        a,
        b,
    )


def filter_configs_by_rate(
    testbed: Testbed,
    configs: List[PairConfig],
    mbps: int,
    min_prr: float = 0.9,
) -> List[PairConfig]:
    """Keep only configs whose two data links still work at ``mbps``."""
    return [
        c
        for c in configs
        if prr_at_rate(testbed, c.s1, c.r1, mbps) > min_prr
        and prr_at_rate(testbed, c.s2, c.r2, mbps) > min_prr
    ]


# ----------------------------------------------------------------------
# §5.4: hidden-interferer triples (Fig. 14)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InterfererTriple:
    """A sender->receiver pair plus a randomly chosen interferer."""

    sender: int
    receiver: int
    interferer: int
    interferer_receiver: int


def find_hidden_interferer_triples(
    testbed: Testbed,
    count: int,
    seed: int = 0,
) -> List[InterfererTriple]:
    """§5.4's sampling: a random potential transmission link (S, R) and an
    interferer I chosen uniformly from all other nodes; I blasts to a
    receiver of its own (any node in range, else broadcast-style neighbour).
    """
    links = testbed.links
    tx_links = _potential_tx_links(links)
    if not tx_links:
        raise ScenarioError("testbed has no potential transmission links")
    rng = testbed.rngs.fork("scenario", "interferer", seed).stream("sample")
    triples: List[InterfererTriple] = []
    ids = links.node_ids
    attempts = 0
    while len(triples) < count and attempts < 100 * count:
        attempts += 1
        s, r = tx_links[int(rng.integers(0, len(tx_links)))]
        i = ids[int(rng.integers(0, len(ids)))]
        if i in (s, r):
            continue
        # The interferer needs somewhere to send its packets; prefer a
        # potential-tx neighbour, else its best-PRR neighbour.
        partners = [b for b in ids if b not in (s, r, i)
                    and links.potential_tx_link(i, b)]
        if partners:
            ir = partners[int(rng.integers(0, len(partners)))]
        else:
            ir = max(
                (b for b in ids if b not in (s, r, i)),
                key=lambda b: links.prr(i, b),
            )
        triples.append(InterfererTriple(s, r, i, ir))
    if len(triples) < count:
        raise ScenarioError("could not sample enough interferer triples")
    return triples


# ----------------------------------------------------------------------
# Dynamic world: mobility and churn scenarios
# ----------------------------------------------------------------------
def find_mobility_configs(
    testbed: Testbed,
    count: int,
    seed: int = 0,
    max_candidates: int = 200_000,
) -> List[PairConfig]:
    """Two-pair configurations for the mobility sweep.

    The *initial* geometry uses the Fig. 11(b) constraints (senders in
    range, both pairs potential transmission links) — the regime where the
    conflict map's verdicts matter most — sampled from a dedicated RNG fork
    so mobility experiments don't perturb (or depend on) the Fig. 13 draw.
    One sender then walks, carrying the configuration through conflicting
    and conflict-free geometries; the link census only describes time zero.
    """
    links = testbed.links
    tx_links = _potential_tx_links(links)
    out: List[PairConfig] = []
    for (s1, r1), (s2, r2) in itertools.permutations(tx_links, 2):
        if len({s1, r1, s2, r2}) != 4:
            continue
        if links.in_range(s1, s2):
            out.append(PairConfig(s1, r1, s2, r2))
            if len(out) >= max_candidates:
                break
    rng = testbed.rngs.fork("scenario", "mobility", seed).stream("sample")
    return _sample(out, count, rng)


def find_disjoint_flows(
    testbed: Testbed,
    n: int,
    count: int,
    seed: int = 0,
) -> List[Tuple[Tuple[int, int], ...]]:
    """Sample ``count`` sets of ``n`` node-disjoint potential-tx flows.

    The churn sweep's substrate: enough concurrent flows that one sender
    joining/leaving visibly re-shapes everyone else's conflict relations.
    """
    links = testbed.links
    tx_links = _potential_tx_links(links)
    if not tx_links:
        raise ScenarioError("testbed has no potential transmission links")
    rng = testbed.rngs.fork("scenario", "churn", seed).stream("sample")
    out: List[Tuple[Tuple[int, int], ...]] = []
    attempts = 0
    while len(out) < count and attempts < 200 * count:
        attempts += 1
        flows: List[Tuple[int, int]] = []
        used: set = set()
        inner = 0
        while len(flows) < n and inner < 2000:
            inner += 1
            s, r = tx_links[int(rng.integers(0, len(tx_links)))]
            if s in used or r in used:
                continue
            flows.append((s, r))
            used.update((s, r))
        if len(flows) == n:
            out.append(tuple(flows))
    if len(out) < count:
        raise ScenarioError("could not sample enough disjoint flow sets")
    return out


# ----------------------------------------------------------------------
# §5.6: access-point topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApTopology:
    """One AP experiment instance: per-region AP and one client flow each.

    ``flows`` holds (sender, receiver) per cell — the paper randomly picks
    the AP or the client as the sender.
    """

    aps: Tuple[int, ...]
    flows: Tuple[Tuple[int, int], ...]

    @property
    def nodes(self) -> Tuple[int, ...]:
        out = []
        for s, r in self.flows:
            out.extend((s, r))
        return tuple(dict.fromkeys(out))

    @property
    def senders(self) -> Tuple[int, ...]:
        return tuple(s for s, _ in self.flows)


def find_ap_topology(
    testbed: Testbed,
    num_aps: int,
    trial_seed: int = 0,
    columns: int = 3,
    rows: int = 2,
) -> ApTopology:
    """§5.6: divide the floor into regions, one AP per region such that APs
    are mutually out of communication range; clients are region nodes with a
    potential transmission link to their AP; sender direction is random.

    ``trial_seed`` varies the client choice (the paper runs 10 trials per
    N with different clients each time). APs are chosen deterministically
    per testbed: for each region, the node that is out of range of the APs
    already picked and closest to the region centre.
    """
    links = testbed.links
    regions = testbed.regions(columns, rows)
    by_region = testbed.nodes_by_region(columns, rows)
    if num_aps > len(regions):
        raise ScenarioError(f"cannot place {num_aps} APs in {len(regions)} regions")

    # Use adjacent regions when fewer than all are needed (paper §5.6).
    chosen_regions = regions[:num_aps]
    aps: List[int] = []
    for region in chosen_regions:
        candidates = sorted(
            by_region[region.index],
            key=lambda n: (testbed.positions[n].x - region.center.x) ** 2
            + (testbed.positions[n].y - region.center.y) ** 2,
        )
        ap = None
        for cand in candidates:
            if all(links.out_of_range(cand, other) for other in aps):
                ap = cand
                break
        if ap is None:
            raise ScenarioError(
                f"no AP candidate out of range of the others in region {region.index}"
            )
        aps.append(ap)

    rng = testbed.rngs.fork("scenario", "ap", num_aps, trial_seed).stream("pick")
    flows: List[Tuple[int, int]] = []
    for region, ap in zip(chosen_regions, aps):
        clients = [
            n
            for n in by_region[region.index]
            if n != ap and n not in aps and links.potential_tx_link(ap, n)
        ]
        if not clients:
            raise ScenarioError(f"AP {ap} has no clients in region {region.index}")
        client = clients[int(rng.integers(0, len(clients)))]
        if rng.random() < 0.5:
            flows.append((ap, client))
        else:
            flows.append((client, ap))
    return ApTopology(tuple(aps), tuple(flows))


# ----------------------------------------------------------------------
# §5.7: two-hop content dissemination mesh
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeshTopology:
    """Fig. 11(d): source S, forwarders A_i, leaf receivers B_i."""

    source: int
    forwarders: Tuple[int, ...]
    leaves: Tuple[int, ...]

    @property
    def nodes(self) -> Tuple[int, ...]:
        return (self.source,) + self.forwarders + self.leaves


def find_mesh_topologies(
    testbed: Testbed,
    count: int,
    fanout: int = 3,
    seed: int = 0,
) -> List[MeshTopology]:
    """Sample §5.7 topologies: S with ``fanout`` potential-tx neighbours
    A_i, each with its own potential-tx leaf B_i (all nodes distinct).

    Content dissemination pushes data *outward*: per Fig. 11(d)'s geometry,
    each leaf B_i lies farther from the source than its forwarder A_i. That
    outward fan is what makes forwarders frequently exposed terminals with
    respect to each other during the A_i -> B_i transfers.
    """
    links = testbed.links
    positions = testbed.positions
    rng = testbed.rngs.fork("scenario", "mesh", seed).stream("sample")
    ids = links.node_ids
    out: List[MeshTopology] = []
    attempts = 0
    while len(out) < count and attempts < 300 * count:
        attempts += 1
        s = ids[int(rng.integers(0, len(ids)))]
        neighbours = [a for a in ids if a != s and links.potential_tx_link(s, a)]
        if len(neighbours) < fanout:
            continue
        picks = rng.choice(len(neighbours), size=fanout, replace=False)
        forwarders = [neighbours[i] for i in picks]
        used = {s, *forwarders}
        leaves: List[int] = []
        ok = True
        for a in forwarders:
            dist_sa = positions[s].distance_to(positions[a])
            cands = [
                b for b in ids
                if b not in used
                and links.potential_tx_link(a, b)
                and positions[s].distance_to(positions[b]) > dist_sa
            ]
            if not cands:
                ok = False
                break
            b = cands[int(rng.integers(0, len(cands)))]
            leaves.append(b)
            used.add(b)
        if ok:
            out.append(MeshTopology(s, tuple(forwarders), tuple(leaves)))
    if len(out) < count:
        raise ScenarioError("could not sample enough mesh topologies")
    return out
