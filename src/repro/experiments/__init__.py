"""Experiment harness: scenario selection, runners, and reporting.

One runner per table/figure of the paper's evaluation (§5); see DESIGN.md's
experiment index for the mapping and ``benchmarks/`` for the entry points
that regenerate each figure's rows/series.
"""

from repro.experiments.scenarios import (
    ScenarioError,
    find_exposed_terminal_configs,
    find_inrange_configs,
    find_hidden_terminal_configs,
    find_hidden_interferer_triples,
    find_ap_topology,
    find_mesh_topologies,
    PairConfig,
    ApTopology,
    MeshTopology,
)
from repro.experiments.runners import (
    ExperimentScale,
    run_single_link_calibration,
    run_exposed_terminals,
    run_inrange_senders,
    run_hidden_terminals,
    run_hidden_interferer_scatter,
    run_ap_topology,
    run_header_trailer_density,
    run_mesh_dissemination,
    run_bitrate_sweep,
)

__all__ = [
    "ScenarioError",
    "find_exposed_terminal_configs",
    "find_inrange_configs",
    "find_hidden_terminal_configs",
    "find_hidden_interferer_triples",
    "find_ap_topology",
    "find_mesh_topologies",
    "PairConfig",
    "ApTopology",
    "MeshTopology",
    "ExperimentScale",
    "run_single_link_calibration",
    "run_exposed_terminals",
    "run_inrange_senders",
    "run_hidden_terminals",
    "run_hidden_interferer_scatter",
    "run_ap_topology",
    "run_header_trailer_density",
    "run_mesh_dissemination",
    "run_bitrate_sweep",
]
