"""Parameter sweeps: does the headline result survive channel assumptions?

A reproduction on a simulated substrate owes the reader a sensitivity
analysis: the paper's 2x exposed-terminal gain should not hinge on one lucky
choice of path-loss exponent, shadowing depth, or LOS fraction. The sweep
utilities rebuild the testbed per grid point, re-select scenarios under the
same Fig. 11 constraints, and re-measure — so the knob varies the *world*,
not just the protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

from repro.experiments.runners import ExperimentScale, run_exposed_terminals
from repro.experiments.scenarios import ScenarioError
from repro.net.testbed import Testbed, TestbedConfig


@dataclass
class SweepPoint:
    """One grid point's outcome."""

    overrides: Dict[str, object]
    cmap_median: float
    cs_on_median: float
    configs_found: int
    error: Optional[str] = None

    @property
    def gain(self) -> float:
        if self.cs_on_median <= 0:
            return float("nan")
        return self.cmap_median / self.cs_on_median


def sweep_testbed_parameters(
    grid: Dict[str, Iterable],
    scale: Optional[ExperimentScale] = None,
    base_config: Optional[TestbedConfig] = None,
    seed: int = 1,
) -> List[SweepPoint]:
    """Run the exposed-terminal experiment across a testbed parameter grid.

    ``grid`` maps :class:`TestbedConfig` field names to value lists; the
    sweep covers the cartesian product. Grid points whose testbed cannot
    supply exposed-terminal configurations are recorded with an ``error``
    instead of failing the sweep — that, too, is information (e.g. with
    ``p_los=0`` there may be no strong links at all).
    """
    scale = scale or ExperimentScale.smoke()
    base = base_config or TestbedConfig()
    names = sorted(grid)
    points: List[SweepPoint] = []
    for values in itertools.product(*(list(grid[n]) for n in names)):
        overrides = dict(zip(names, values))
        config = replace(base, **overrides)
        testbed = Testbed(seed=seed, config=config)
        try:
            result = run_exposed_terminals(
                testbed, scale, include_win1=False
            )
            points.append(
                SweepPoint(
                    overrides=overrides,
                    cmap_median=result.median("cmap"),
                    cs_on_median=result.median("cs_on"),
                    configs_found=len(result.configs),
                )
            )
        except ScenarioError as exc:
            points.append(
                SweepPoint(
                    overrides=overrides,
                    cmap_median=0.0,
                    cs_on_median=0.0,
                    configs_found=0,
                    error=str(exc),
                )
            )
    return points


def render_sweep(points: List[SweepPoint]) -> str:
    """Text table of a sweep's outcomes."""
    if not points:
        return "(empty sweep)"
    names = sorted(points[0].overrides)
    head = "  ".join(f"{n:>18}" for n in names)
    lines = [f"{head}  {'cs_on':>7}  {'cmap':>7}  {'gain':>6}  configs"]
    for p in points:
        row = "  ".join(f"{str(p.overrides[n]):>18}" for n in names)
        if p.error:
            lines.append(f"{row}  {'—':>7}  {'—':>7}  {'—':>6}  {p.error}")
        else:
            lines.append(
                f"{row}  {p.cs_on_median:>7.2f}  {p.cmap_median:>7.2f}"
                f"  {p.gain:>5.2f}x  {p.configs_found}"
            )
    return "\n".join(lines)
