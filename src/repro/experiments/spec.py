"""Declarative experiment specifications.

The experiment layer is split into three pieces:

* **what to run** — :class:`TrialSpec`: one simulation run described by plain
  data (nodes, flows, a registry-keyed MAC, seed, duration, metrics). Specs
  are picklable, so any executor backend can materialize them, including
  process pools.
* **what it produced** — :class:`TrialResult`: per-flow throughputs plus any
  declared metric values, all JSON-serializable so results can be persisted
  and resumed.
* **what it means** — :class:`ExperimentSpec`: a named list of trials plus a
  pure ``reduce`` step that folds ordered trial results into the figure
  dataclass the paper's tables are rendered from.

``repro.experiments.executor`` consumes these; ``repro.experiments.runners``
builds one :class:`ExperimentSpec` per paper figure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network import MAC_BUILDERS, MacFactory, build_mac_factory
from repro.util.rng import stable_hash

Flow = Tuple[int, int]

#: Registry key for MAC specs wrapping a raw (non-picklable) callable.
INLINE_PROTOCOL = "<inline>"

#: Monotonic serial for inline wraps: unlike ``id()``, never reused within a
#: process, so two wraps can never collide in a ResultStore.
_inline_serial = itertools.count()


@dataclass(frozen=True)
class MacSpec:
    """A MAC protocol referenced by registry name + constructor params.

    ``params`` values are passed to the registered builder; rate knobs
    (``data_rate``/``control_rate``/``ack_rate``) may be plain Mb/s ints.
    ``inline`` is an escape hatch wrapping an existing :data:`MacFactory`
    callable — usable with the serial backend only (closures don't pickle).
    """

    protocol: str
    params: Tuple[Tuple[str, Any], ...] = ()
    inline: Optional[MacFactory] = field(default=None, compare=False)

    @classmethod
    def of(cls, protocol: str, **params) -> "MacSpec":
        return cls(protocol, tuple(sorted(params.items())))

    @classmethod
    def wrap(cls, factory: MacFactory) -> "MacSpec":
        # The params a closure captured are invisible here, so every wrap
        # gets a fresh serial number: two inline experiments can never share
        # a fingerprint, and a ResultStore can never serve one's cached
        # results to the other. The flip side is that inline specs never
        # resume — use a registry-keyed MacSpec for persistent sweeps.
        label = getattr(factory, "__qualname__", repr(factory))
        return cls(
            INLINE_PROTOCOL,
            (("factory", label), ("serial", next(_inline_serial))),
            inline=factory,
        )

    def __getstate__(self):
        # Closures don't pickle; registry-keyed specs survive the trip and
        # inline ones fail loudly in build() on the far side.
        return {"protocol": self.protocol, "params": self.params, "inline": None}

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def build(self) -> MacFactory:
        if self.inline is not None:
            return self.inline
        if self.protocol == INLINE_PROTOCOL:
            raise ValueError(
                "inline MacSpec lost its factory (e.g. crossed a process "
                "boundary); use a registry-keyed MacSpec instead"
            )
        return build_mac_factory(self.protocol, dict(self.params))


@dataclass(frozen=True)
class MobilitySpec:
    """A mobility model referenced by registry name + params, as plain data.

    ``nodes`` are the walkers; every other node stays put. ``params`` go to
    the registered builder (see :data:`repro.net.mobility.MOBILITY_MODELS`),
    which also receives the testbed's floor plan. Registry keys keep trial
    specs picklable, exactly like :class:`MacSpec`.
    """

    model: str
    nodes: Tuple[int, ...]
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, model: str, nodes, **params) -> "MobilitySpec":
        return cls(model, tuple(nodes), tuple(sorted(params.items())))

    def build(self, floor):
        from repro.net.mobility import build_mobility_model

        return build_mobility_model(self.model, floor, dict(self.params))


#: One churn event: (sim time, "join" | "leave", node id). A node whose
#: *first* event is "join" is left out of the initial network and enters at
#: that time (with its flows); "leave" stops and detaches it. Events are
#: plain data so specs pickle and fingerprint.
ChurnEvent = Tuple[float, str, int]


def coerce_mac(mac) -> MacSpec:
    """Accept a MacSpec, a registered protocol name, or a raw factory."""
    if isinstance(mac, MacSpec):
        return mac
    if isinstance(mac, str):
        if mac not in MAC_BUILDERS:
            raise KeyError(f"unknown MAC protocol {mac!r}")
        return MacSpec.of(mac)
    if callable(mac):
        return MacSpec.wrap(mac)
    raise TypeError(f"cannot interpret {mac!r} as a MAC spec")


@dataclass(frozen=True)
class TrialSpec:
    """One independent simulation run, described declaratively.

    Fields mirror what the hand-rolled runners used to assemble imperatively:
    which testbed nodes to instantiate (in order), which saturated flows to
    attach, which MAC to build, the run seed, and the run length. ``measure``
    lists the (src, dst) pairs whose throughput the reducer needs when they
    differ from ``flows`` (e.g. broadcast fan-out measured per receiver).
    ``metrics`` names extra per-trial measurements from the executor's
    metric registry; they are computed inside the worker so results stay
    plain data.
    """

    trial_id: str
    nodes: Tuple[int, ...]
    flows: Tuple[Flow, ...]
    mac: MacSpec
    run_seed: int
    duration: float
    warmup: float
    measure: Optional[Tuple[Flow, ...]] = None
    track_tx: bool = False
    metrics: Tuple[str, ...] = ()
    payload_bytes: int = 1400
    #: Optional time-varying world: walkers + their model (None = static).
    mobility: Optional[MobilitySpec] = None
    #: Scheduled join/leave events (empty = fixed membership).
    churn: Tuple[ChurnEvent, ...] = ()
    #: Neighborhood culling floors (see :class:`repro.phy.medium.Medium`):
    #: receivers below the delivery floor get interference-only fan-out
    #: entries; below the interference floor they are culled entirely.
    #: None (default) keeps the exhaustive fan-out -- bit-identical to
    #: every pre-culling trial.
    delivery_floor_dbm: Optional[float] = None
    interference_floor_dbm: Optional[float] = None

    @property
    def measured_flows(self) -> Tuple[Flow, ...]:
        return self.flows if self.measure is None else self.measure

    @property
    def senders(self) -> Tuple[int, ...]:
        return tuple(s for s, _ in self.flows)

    def fingerprint(self) -> str:
        """A process-stable digest of everything that shapes the result.

        Persistence keys cached trial results by (trial_id, fingerprint) so a
        resumed run never reuses a result produced under different settings.
        """
        parts = [
            self.nodes,
            self.flows,
            self.measured_flows,
            self.mac.protocol,
            self.mac.params,
            self.run_seed,
            self.duration,
            self.warmup,
            self.track_tx,
            self.metrics,
            self.payload_bytes,
            repr(self.mobility),
            self.churn,
        ]
        # Appended only when set, so every pre-culling spec keeps the
        # fingerprint it had before these fields existed (stores written by
        # earlier versions stay resumable).
        if self.delivery_floor_dbm is not None or self.interference_floor_dbm is not None:
            parts.append(("floors", self.delivery_floor_dbm, self.interference_floor_dbm))
        return format(stable_hash(*parts), "016x")


@dataclass
class TrialResult:
    """Plain-data outcome of one trial: flow throughputs + metric values."""

    trial_id: str
    flow_mbps: Dict[Flow, float]
    metrics: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""

    def mbps(self, src: int, dst: int) -> float:
        return self.flow_mbps[(src, dst)]

    # ------------------------------------------------------------------
    # JSON round-trip (for ResultStore persistence)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "trial_id": self.trial_id,
            "fingerprint": self.fingerprint,
            "flow_mbps": [[s, d, v] for (s, d), v in self.flow_mbps.items()],
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TrialResult":
        return cls(
            trial_id=obj["trial_id"],
            flow_mbps={(s, d): v for s, d, v in obj["flow_mbps"]},
            metrics=obj.get("metrics", {}),
            fingerprint=obj.get("fingerprint", ""),
        )


@dataclass
class ExperimentSpec:
    """A named set of trials plus the pure reduction to a figure result.

    ``reduce`` receives the :class:`TrialResult` list in ``trials`` order —
    executor backends may run trials in any order or skip cached ones, but
    the reduction always sees them positionally aligned with the spec.
    """

    name: str
    trials: List[TrialSpec]
    reduce: Callable[[List[TrialResult]], Any]

    def __post_init__(self):
        seen: set = set()
        for t in self.trials:
            if t.trial_id in seen:
                raise ValueError(f"duplicate trial id {t.trial_id!r}")
            seen.add(t.trial_id)
