"""Declarative experiment specifications.

The experiment layer is split into three pieces:

* **what to run** — :class:`TrialSpec`: one simulation run described by plain
  data (nodes, flows, a registry-keyed MAC, seed, duration, metrics). Specs
  are picklable, so any executor backend can materialize them, including
  process pools.
* **what it produced** — :class:`TrialResult`: per-flow throughputs plus any
  declared metric values, all JSON-serializable so results can be persisted
  and resumed.
* **what it means** — :class:`ExperimentSpec`: a named list of trials plus a
  pure ``reduce`` step that folds ordered trial results into the figure
  dataclass the paper's tables are rendered from.

``repro.experiments.executor`` consumes these; ``repro.experiments.runners``
builds one :class:`ExperimentSpec` per paper figure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.network import MAC_BUILDERS, MacFactory, build_mac_factory
from repro.util.rng import stable_hash

Flow = Tuple[int, int]

#: Types a wire-format param value may take. JSON round-trips these exactly
#: (ints stay ints, floats stay floats), which is what keeps a deserialized
#: spec fingerprint-identical to the original — the contract the service's
#: HTTP submit path depends on.
_WIRE_SCALARS = (str, int, float, bool, type(None))


def _params_to_wire(params: Tuple[Tuple[str, Any], ...], what: str) -> list:
    out = []
    for key, value in params:
        if not isinstance(value, _WIRE_SCALARS):
            raise ValueError(
                f"{what} param {key!r}={value!r} is not JSON-scalar; the "
                f"wire format carries str/int/float/bool/None values only"
            )
        out.append([key, value])
    return out


def _params_from_wire(obj) -> Tuple[Tuple[str, Any], ...]:
    return tuple((str(k), v) for k, v in obj)

#: Registry key for MAC specs wrapping a raw (non-picklable) callable.
INLINE_PROTOCOL = "<inline>"

#: Monotonic serial for inline wraps: unlike ``id()``, never reused within a
#: process, so two wraps can never collide in a ResultStore.
_inline_serial = itertools.count()


@dataclass(frozen=True)
class MacSpec:
    """A MAC protocol referenced by registry name + constructor params.

    ``params`` values are passed to the registered builder; rate knobs
    (``data_rate``/``control_rate``/``ack_rate``) may be plain Mb/s ints.
    ``inline`` is an escape hatch wrapping an existing :data:`MacFactory`
    callable — usable with the serial backend only (closures don't pickle).
    """

    protocol: str
    params: Tuple[Tuple[str, Any], ...] = ()
    inline: Optional[MacFactory] = field(default=None, compare=False)

    @classmethod
    def of(cls, protocol: str, **params) -> "MacSpec":
        return cls(protocol, tuple(sorted(params.items())))

    @classmethod
    def wrap(cls, factory: MacFactory) -> "MacSpec":
        # The params a closure captured are invisible here, so every wrap
        # gets a fresh serial number: two inline experiments can never share
        # a fingerprint, and a ResultStore can never serve one's cached
        # results to the other. The flip side is that inline specs never
        # resume — use a registry-keyed MacSpec for persistent sweeps.
        label = getattr(factory, "__qualname__", repr(factory))
        return cls(
            INLINE_PROTOCOL,
            (("factory", label), ("serial", next(_inline_serial))),
            inline=factory,
        )

    def __getstate__(self):
        # Closures don't pickle; registry-keyed specs survive the trip and
        # inline ones fail loudly in build() on the far side.
        return {"protocol": self.protocol, "params": self.params, "inline": None}

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def build(self) -> MacFactory:
        if self.inline is not None:
            return self.inline
        if self.protocol == INLINE_PROTOCOL:
            raise ValueError(
                "inline MacSpec lost its factory (e.g. crossed a process "
                "boundary); use a registry-keyed MacSpec instead"
            )
        return build_mac_factory(self.protocol, dict(self.params))

    def to_wire(self) -> dict:
        if self.protocol == INLINE_PROTOCOL:
            raise ValueError(
                "inline MacSpec cannot cross the wire; use a registry-keyed "
                "MacSpec instead"
            )
        return {
            "protocol": self.protocol,
            "params": _params_to_wire(self.params, f"MAC {self.protocol!r}"),
        }

    @classmethod
    def from_wire(cls, obj: dict) -> "MacSpec":
        return cls(str(obj["protocol"]), _params_from_wire(obj.get("params", ())))


@dataclass(frozen=True)
class MobilitySpec:
    """A mobility model referenced by registry name + params, as plain data.

    ``nodes`` are the walkers; every other node stays put. ``params`` go to
    the registered builder (see :data:`repro.net.mobility.MOBILITY_MODELS`),
    which also receives the testbed's floor plan. Registry keys keep trial
    specs picklable, exactly like :class:`MacSpec`.
    """

    model: str
    nodes: Tuple[int, ...]
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, model: str, nodes, **params) -> "MobilitySpec":
        return cls(model, tuple(nodes), tuple(sorted(params.items())))

    def build(self, floor):
        from repro.net.mobility import build_mobility_model

        return build_mobility_model(self.model, floor, dict(self.params))

    def to_wire(self) -> dict:
        return {
            "model": self.model,
            "nodes": list(self.nodes),
            "params": _params_to_wire(self.params, f"mobility {self.model!r}"),
        }

    @classmethod
    def from_wire(cls, obj: dict) -> "MobilitySpec":
        return cls(
            str(obj["model"]),
            tuple(int(n) for n in obj["nodes"]),
            _params_from_wire(obj.get("params", ())),
        )


#: One churn event: (sim time, "join" | "leave", node id). A node whose
#: *first* event is "join" is left out of the initial network and enters at
#: that time (with its flows); "leave" stops and detaches it. Events are
#: plain data so specs pickle and fingerprint.
ChurnEvent = Tuple[float, str, int]


def coerce_mac(mac) -> MacSpec:
    """Accept a MacSpec, a registered protocol name, or a raw factory."""
    if isinstance(mac, MacSpec):
        return mac
    if isinstance(mac, str):
        if mac not in MAC_BUILDERS:
            raise KeyError(f"unknown MAC protocol {mac!r}")
        return MacSpec.of(mac)
    if callable(mac):
        return MacSpec.wrap(mac)
    raise TypeError(f"cannot interpret {mac!r} as a MAC spec")


@dataclass(frozen=True)
class TrialSpec:
    """One independent simulation run, described declaratively.

    Fields mirror what the hand-rolled runners used to assemble imperatively:
    which testbed nodes to instantiate (in order), which saturated flows to
    attach, which MAC to build, the run seed, and the run length. ``measure``
    lists the (src, dst) pairs whose throughput the reducer needs when they
    differ from ``flows`` (e.g. broadcast fan-out measured per receiver).
    ``metrics`` names extra per-trial measurements from the executor's
    metric registry; they are computed inside the worker so results stay
    plain data.
    """

    trial_id: str
    nodes: Tuple[int, ...]
    flows: Tuple[Flow, ...]
    mac: MacSpec
    run_seed: int
    duration: float
    warmup: float
    measure: Optional[Tuple[Flow, ...]] = None
    track_tx: bool = False
    metrics: Tuple[str, ...] = ()
    payload_bytes: int = 1400
    #: Optional time-varying world: walkers + their model (None = static).
    mobility: Optional[MobilitySpec] = None
    #: Scheduled join/leave events (empty = fixed membership).
    churn: Tuple[ChurnEvent, ...] = ()
    #: Neighborhood culling floors (see :class:`repro.phy.medium.Medium`):
    #: receivers below the delivery floor get interference-only fan-out
    #: entries; below the interference floor they are culled entirely.
    #: None (default) keeps the exhaustive fan-out -- bit-identical to
    #: every pre-culling trial.
    delivery_floor_dbm: Optional[float] = None
    interference_floor_dbm: Optional[float] = None

    @property
    def measured_flows(self) -> Tuple[Flow, ...]:
        return self.flows if self.measure is None else self.measure

    @property
    def senders(self) -> Tuple[int, ...]:
        return tuple(s for s, _ in self.flows)

    def fingerprint(self) -> str:
        """A process-stable digest of everything that shapes the result.

        Persistence keys cached trial results by (trial_id, fingerprint) so a
        resumed run never reuses a result produced under different settings.
        """
        parts = [
            self.nodes,
            self.flows,
            self.measured_flows,
            self.mac.protocol,
            self.mac.params,
            self.run_seed,
            self.duration,
            self.warmup,
            self.track_tx,
            self.metrics,
            self.payload_bytes,
            repr(self.mobility),
            self.churn,
        ]
        # Appended only when set, so every pre-culling spec keeps the
        # fingerprint it had before these fields existed (stores written by
        # earlier versions stay resumable).
        if self.delivery_floor_dbm is not None or self.interference_floor_dbm is not None:
            parts.append(("floors", self.delivery_floor_dbm, self.interference_floor_dbm))
        return format(stable_hash(*parts), "016x")

    # ------------------------------------------------------------------
    # Wire format (JSON over HTTP)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """A JSON-ready dict that :meth:`from_wire` restores exactly.

        The round trip is lossless by contract: the restored spec compares
        equal to the original and produces the same :meth:`fingerprint`, so
        a sweep submitted over the wire hits the same ResultStore cache
        entries as one built in-process. Optional fields are omitted at
        their defaults, which keeps old payloads parseable as fields grow.
        """
        wire = {
            "trial_id": self.trial_id,
            "nodes": list(self.nodes),
            "flows": [list(f) for f in self.flows],
            "mac": self.mac.to_wire(),
            "run_seed": self.run_seed,
            "duration": self.duration,
            "warmup": self.warmup,
        }
        if self.measure is not None:
            wire["measure"] = [list(f) for f in self.measure]
        if self.track_tx:
            wire["track_tx"] = True
        if self.metrics:
            wire["metrics"] = list(self.metrics)
        if self.payload_bytes != 1400:
            wire["payload_bytes"] = self.payload_bytes
        if self.mobility is not None:
            wire["mobility"] = self.mobility.to_wire()
        if self.churn:
            wire["churn"] = [[t, op, node] for t, op, node in self.churn]
        if self.delivery_floor_dbm is not None:
            wire["delivery_floor_dbm"] = self.delivery_floor_dbm
        if self.interference_floor_dbm is not None:
            wire["interference_floor_dbm"] = self.interference_floor_dbm
        return wire

    @classmethod
    def from_wire(cls, obj: dict) -> "TrialSpec":
        measure = obj.get("measure")
        mobility = obj.get("mobility")
        return cls(
            trial_id=str(obj["trial_id"]),
            nodes=tuple(int(n) for n in obj["nodes"]),
            flows=tuple((int(s), int(d)) for s, d in obj["flows"]),
            mac=MacSpec.from_wire(obj["mac"]),
            run_seed=obj["run_seed"],
            duration=obj["duration"],
            warmup=obj["warmup"],
            measure=(tuple((int(s), int(d)) for s, d in measure)
                     if measure is not None else None),
            track_tx=bool(obj.get("track_tx", False)),
            metrics=tuple(str(m) for m in obj.get("metrics", ())),
            payload_bytes=obj.get("payload_bytes", 1400),
            mobility=(MobilitySpec.from_wire(mobility)
                      if mobility is not None else None),
            churn=tuple((t, str(op), int(node))
                        for t, op, node in obj.get("churn", ())),
            delivery_floor_dbm=obj.get("delivery_floor_dbm"),
            interference_floor_dbm=obj.get("interference_floor_dbm"),
        )


@dataclass
class TrialResult:
    """Plain-data outcome of one trial: flow throughputs + metric values."""

    trial_id: str
    flow_mbps: Dict[Flow, float]
    metrics: Dict[str, Any] = field(default_factory=dict)
    fingerprint: str = ""

    def mbps(self, src: int, dst: int) -> float:
        return self.flow_mbps[(src, dst)]

    # ------------------------------------------------------------------
    # JSON round-trip (for ResultStore persistence)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "trial_id": self.trial_id,
            "fingerprint": self.fingerprint,
            "flow_mbps": [[s, d, v] for (s, d), v in self.flow_mbps.items()],
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TrialResult":
        return cls(
            trial_id=obj["trial_id"],
            flow_mbps={(s, d): v for s, d, v in obj["flow_mbps"]},
            metrics=obj.get("metrics", {}),
            fingerprint=obj.get("fingerprint", ""),
        )


@dataclass
class ExperimentSpec:
    """A named set of trials plus the pure reduction to a figure result.

    ``reduce`` receives the :class:`TrialResult` list in ``trials`` order —
    executor backends may run trials in any order or skip cached ones, but
    the reduction always sees them positionally aligned with the spec.
    """

    name: str
    trials: List[TrialSpec]
    reduce: Callable[[List[TrialResult]], Any]

    def __post_init__(self):
        seen: set = set()
        for t in self.trials:
            if t.trial_id in seen:
                raise ValueError(f"duplicate trial id {t.trial_id!r}")
            seen.add(t.trial_id)


def experiment_to_wire(spec: ExperimentSpec) -> dict:
    """Serialize an experiment's name + trials for the HTTP submit path.

    The ``reduce`` callable does not cross the wire — the service works at
    trial granularity (every TrialResult lands in the run-table as it
    completes) and figure-level reductions stay a client-side concern.
    """
    return {"name": spec.name, "trials": [t.to_wire() for t in spec.trials]}


def experiment_from_wire(obj: dict) -> ExperimentSpec:
    """Restore a wire experiment; its reduction is the identity (the raw
    ordered :class:`TrialResult` list)."""
    trials = [TrialSpec.from_wire(t) for t in obj["trials"]]
    return ExperimentSpec(str(obj["name"]), trials, lambda results: results)
