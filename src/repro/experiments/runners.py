"""Per-figure experiment builders and runners (paper §5).

Each figure is expressed declaratively: a ``build_*`` function turns a
testbed + :class:`ExperimentScale` into an
:class:`~repro.experiments.spec.ExperimentSpec` — a flat list of independent
:class:`~repro.experiments.spec.TrialSpec`s plus a pure reduction to the
figure's result dataclass. The matching ``run_*`` function executes the spec
through :func:`repro.experiments.executor.run_experiment`, which accepts a
pluggable backend (serial or process-pool) and an optional
:class:`~repro.experiments.executor.ResultStore` for persistence/resume.

All runners accept an :class:`ExperimentScale`; the default is a reduced
scale that preserves the papers' *shapes* in seconds-to-minutes of wall time.
``ExperimentScale.paper()`` matches the paper's sample sizes (50 configs per
CDF, 500 triples, 10 trials per N, 100 s runs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import ResultStore, run_experiment
from repro.experiments.scenarios import (
    ApTopology,
    InterfererTriple,
    MeshTopology,
    PairConfig,
    find_ap_topology,
    find_disjoint_flows,
    find_exposed_terminal_configs,
    find_hidden_interferer_triples,
    find_hidden_terminal_configs,
    find_inrange_configs,
    find_mesh_topologies,
    find_mobility_configs,
)
from repro.experiments.spec import (
    ChurnEvent,
    ExperimentSpec,
    MacSpec,
    MobilitySpec,
    TrialResult,
    TrialSpec,
    coerce_mac,
)
from repro.experiments.topologies import (
    TopologySpec,
    build_topology,
    default_flows_n,
)
from repro.net.testbed import Testbed
from repro.phy.frames import BROADCAST
from repro.util.rng import stable_hash


@dataclass
class ExperimentScale:
    """Sample sizes and run lengths for the harness."""

    configs: int = 10  # pair configs per CDF (paper: 50)
    duration: float = 12.0  # run length, seconds (paper: 100)
    warmup: float = 5.0  # excluded from measurement (paper: 40)
    triples: int = 60  # hidden-interferer triples (paper: 500)
    trials_per_n: int = 2  # AP client draws per N (paper: 10)
    mesh_topologies: int = 4  # mesh instances (paper: 10)
    ht_configs_per_n: int = 4  # Fig. 19 topologies per sender count
    scale_ns: Tuple[int, ...] = (25, 100)  # world sizes for the scale sweep

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            configs=50,
            duration=100.0,
            warmup=40.0,
            triples=500,
            trials_per_n=10,
            mesh_topologies=10,
            ht_configs_per_n=8,
            scale_ns=(25, 100, 400),
        )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A minutes-scale preset for CI and benchmarks."""
        return cls(scale_ns=(25, 100, 400))

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A seconds-scale preset for tests."""
        return cls(
            configs=3,
            duration=6.0,
            warmup=2.5,
            triples=10,
            trials_per_n=1,
            mesh_topologies=2,
            ht_configs_per_n=2,
            scale_ns=(25, 64),
        )

    @classmethod
    def preset(cls, name: str) -> "ExperimentScale":
        """Resolve a named preset (``smoke`` | ``quick`` | ``paper``) — the
        names the CLI and the service's HTTP submit path accept."""
        presets = {"smoke": cls.smoke, "quick": cls.quick, "paper": cls.paper}
        if name not in presets:
            raise KeyError(
                f"unknown scale preset {name!r}; pick from {sorted(presets)}"
            )
        return presets[name]()


def sample_median(vals: Sequence[float]) -> float:
    """Upper median — the convention every result class here uses; 0 if empty."""
    s = sorted(vals)
    return s[len(s) // 2] if s else 0.0


# ======================================================================
# §4.2: single-link calibration
# ======================================================================
@dataclass
class CalibrationResult:
    """Paper §4.2: CMAP 5.04 Mb/s vs 802.11 5.07 Mb/s on one link."""

    cmap_mbps: float
    dcf_mbps: float
    pair: Tuple[int, int]


def build_single_link_calibration(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ExperimentSpec:
    scale = scale or ExperimentScale()
    links = testbed.links
    pair = None
    for a in links.node_ids:
        for b in links.node_ids:
            if a != b and links.potential_tx_link(a, b) and links.strong_signal(a, b):
                pair = (a, b)
                break
        if pair:
            break
    if pair is None:
        raise RuntimeError("testbed has no strong potential transmission link")
    trials = [
        TrialSpec(
            trial_id=f"calibration/{name}",
            nodes=pair,
            flows=(pair,),
            mac=MacSpec.of(protocol),
            run_seed=seed,
            duration=scale.duration,
            warmup=scale.warmup,
        )
        for name, protocol in (("cmap", "cmap"), ("dcf", "dcf"))
    ]

    def reduce(results: List[TrialResult]) -> CalibrationResult:
        cmap_res, dcf_res = results
        return CalibrationResult(cmap_res.mbps(*pair), dcf_res.mbps(*pair), pair)

    return ExperimentSpec("calibration", trials, reduce)


def run_single_link_calibration(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> CalibrationResult:
    spec = build_single_link_calibration(testbed, scale, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Figs. 12 / 13 / 15 / 20: two-pair CDF experiments
# ======================================================================
@dataclass
class PairCdfResult:
    """One CDF figure: per-protocol total throughput across configurations."""

    figure: str
    configs: List[PairConfig]
    #: protocol label -> total throughput (Mb/s) per configuration.
    totals: Dict[str, List[float]]
    #: protocol label -> per-flow throughput pairs per configuration.
    per_flow: Dict[str, List[Tuple[float, float]]]
    #: CMAP concurrency fraction per configuration (when measured).
    cmap_concurrency: List[float] = field(default_factory=list)

    def median(self, protocol: str) -> float:
        return sample_median(self.totals[protocol])

    def gain_over(self, protocol: str, baseline: str) -> float:
        """Ratio of medians — the paper's headline "2x over CSMA"."""
        base = self.median(baseline)
        return self.median(protocol) / base if base > 0 else float("inf")


def _pair_cdf_trials(
    figure: str,
    configs: List[PairConfig],
    protocols: Dict[str, MacSpec],
    scale: ExperimentScale,
    track_cmap_concurrency: bool,
) -> List[TrialSpec]:
    trials: List[TrialSpec] = []
    for idx, config in enumerate(configs):
        for name, mac in protocols.items():
            track = track_cmap_concurrency and name.startswith("cmap")
            trials.append(
                TrialSpec(
                    trial_id=f"{figure}/{idx}/{name}",
                    nodes=config.nodes,
                    flows=config.flows,
                    mac=mac,
                    run_seed=idx,
                    duration=scale.duration,
                    warmup=scale.warmup,
                    track_tx=track,
                    metrics=("concurrency",) if track else (),
                )
            )
    return trials


def _reduce_pair_cdf(
    figure: str,
    configs: List[PairConfig],
    protocol_names: Sequence[str],
    results: List[TrialResult],
) -> PairCdfResult:
    totals: Dict[str, List[float]] = {name: [] for name in protocol_names}
    per_flow: Dict[str, List[Tuple[float, float]]] = {
        name: [] for name in protocol_names
    }
    concurrency: List[float] = []
    it = iter(results)
    for config in configs:
        for name in protocol_names:
            res = next(it)
            f1 = res.mbps(config.s1, config.r1)
            f2 = res.mbps(config.s2, config.r2)
            totals[name].append(f1 + f2)
            per_flow[name].append((f1, f2))
            if "concurrency" in res.metrics:
                concurrency.append(res.metrics["concurrency"])
    return PairCdfResult(figure, configs, totals, per_flow, concurrency)


def build_pair_cdf_experiment(
    figure: str,
    configs: List[PairConfig],
    protocols: Dict[str, object],
    scale: ExperimentScale,
    track_cmap_concurrency: bool = True,
) -> ExperimentSpec:
    """Build the generic two-pair CDF experiment (also used by ablations).

    ``protocols`` values may be :class:`MacSpec`s, registered protocol names,
    or raw :data:`MacFactory` callables (serial-backend only).
    """
    macs = {name: coerce_mac(m) for name, m in protocols.items()}
    trials = _pair_cdf_trials(figure, configs, macs, scale, track_cmap_concurrency)

    def reduce(results: List[TrialResult]) -> PairCdfResult:
        return _reduce_pair_cdf(figure, configs, list(macs), results)

    return ExperimentSpec(figure, trials, reduce)


def run_pair_cdf_experiment(
    figure: str,
    testbed: Testbed,
    configs: List[PairConfig],
    protocols: Dict[str, object],
    scale: ExperimentScale,
    track_cmap_concurrency: bool = True,
    backend=None,
    store: Optional[ResultStore] = None,
) -> PairCdfResult:
    """Public entry for custom two-pair CDF experiments (ablations)."""
    spec = build_pair_cdf_experiment(
        figure, configs, protocols, scale, track_cmap_concurrency
    )
    return run_experiment(spec, testbed, backend=backend, store=store)


def build_exposed_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    include_win1: bool = True,
) -> ExperimentSpec:
    """Fig. 12: exposed terminals. Curves: CS+acks, CS-off+no-acks, CMAP,
    and CMAP with a window of one virtual packet (the §5.2 ablation)."""
    scale = scale or ExperimentScale()
    configs = find_exposed_terminal_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cs_off_noacks": MacSpec.of("dcf", carrier_sense=False, acks=False),
        "cmap": MacSpec.of("cmap"),
    }
    if include_win1:
        protocols["cmap_win1"] = MacSpec.of("cmap", nwindow=1)
    return build_pair_cdf_experiment("fig12", configs, protocols, scale)


def run_exposed_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    include_win1: bool = True,
    backend=None,
    store: Optional[ResultStore] = None,
) -> PairCdfResult:
    spec = build_exposed_terminals(testbed, scale, seed, include_win1)
    return run_experiment(spec, testbed, backend=backend, store=store)


def build_inrange_senders(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Fig. 13: two senders in range of each other, cross links free."""
    scale = scale or ExperimentScale()
    configs = find_inrange_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cs_off_acks": MacSpec.of("dcf", carrier_sense=False, acks=True),
        "cs_off_noacks": MacSpec.of("dcf", carrier_sense=False, acks=False),
        "cmap": MacSpec.of("cmap"),
    }
    return build_pair_cdf_experiment("fig13", configs, protocols, scale)


def run_inrange_senders(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> PairCdfResult:
    spec = build_inrange_senders(testbed, scale, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


def build_hidden_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Fig. 15: senders out of range, receivers hear both senders."""
    scale = scale or ExperimentScale()
    configs = find_hidden_terminal_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cs_off_acks": MacSpec.of("dcf", carrier_sense=False, acks=True),
        "cmap": MacSpec.of("cmap"),
    }
    return build_pair_cdf_experiment("fig15", configs, protocols, scale)


def run_hidden_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> PairCdfResult:
    spec = build_hidden_terminals(testbed, scale, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


@dataclass
class BitrateSweepResult:
    """Fig. 20: exposed-terminal CDFs at 6/12/18 Mb/s."""

    #: rate (Mb/s) -> protocol -> totals across configs.
    by_rate: Dict[int, PairCdfResult]


def build_bitrate_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    rates: Sequence[int] = (6, 12, 18),
) -> ExperimentSpec:
    """Fig. 20: repeat the exposed-terminal experiment at higher bit-rates.

    Control frames (headers, trailers, ACKs, interferer lists) stay at the
    base rate, as in §5.8.
    """
    scale = scale or ExperimentScale()
    configs = find_exposed_terminal_configs(testbed, scale.configs, seed)
    groups: List[Tuple[int, Dict[str, MacSpec], List[TrialSpec]]] = []
    for mbps in rates:
        protocols = {
            "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True,
                                data_rate=mbps),
            "cmap": MacSpec.of("cmap", data_rate=mbps, control_rate=6),
        }
        trials = _pair_cdf_trials(
            f"fig20@{mbps}", configs, protocols, scale,
            track_cmap_concurrency=True,
        )
        groups.append((mbps, protocols, trials))

    def reduce(results: List[TrialResult]) -> BitrateSweepResult:
        out: Dict[int, PairCdfResult] = {}
        pos = 0
        for mbps, protocols, trials in groups:
            chunk = results[pos:pos + len(trials)]
            pos += len(trials)
            out[mbps] = _reduce_pair_cdf(
                f"fig20@{mbps}", configs, list(protocols), chunk
            )
        return BitrateSweepResult(out)

    all_trials = [t for _, _, trials in groups for t in trials]
    return ExperimentSpec("fig20", all_trials, reduce)


def run_bitrate_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    rates: Sequence[int] = (6, 12, 18),
    backend=None,
    store: Optional[ResultStore] = None,
) -> BitrateSweepResult:
    spec = build_bitrate_sweep(testbed, scale, seed, rates)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Dynamic world: mobility and churn sweeps (§3.4 adaptation)
# ======================================================================
@dataclass
class MobilitySweepResult:
    """CMAP vs DCF as one sender walks: total throughput by walk speed."""

    speeds: Tuple[float, ...]
    #: speed (m/s) -> protocol -> total throughput per configuration.
    totals: Dict[float, Dict[str, List[float]]]
    configs: List[PairConfig] = field(default_factory=list)

    def median(self, speed: float, protocol: str) -> float:
        return sample_median(self.totals[speed][protocol])


def build_mobility_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    speeds: Sequence[float] = (0.0, 0.5, 1.5, 3.0),
) -> ExperimentSpec:
    """Sweep walk speed: sender 2 of each pair config random-waypoints
    across the floor while both flows stay saturated.

    At 0 m/s this is a plain static two-pair run; as speed grows the
    conflict relations churn faster than the map's measurement window and
    the adaptation machinery (entry timeouts, staleness pruning) is what
    keeps CMAP's verdicts current. DCF, whose carrier sense needs no
    learning, is the control.
    """
    scale = scale or ExperimentScale()
    configs = find_mobility_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cmap": MacSpec.of("cmap"),
    }
    trials: List[TrialSpec] = []
    for speed in speeds:
        for idx, config in enumerate(configs):
            mobility = None
            if speed > 0:
                mobility = MobilitySpec.of(
                    "random_waypoint",
                    nodes=(config.s2,),
                    speed_mps=speed,
                    step_interval=0.25,
                )
            for name, mac in protocols.items():
                trials.append(
                    TrialSpec(
                        trial_id=f"mobility/v{speed}/{idx}/{name}",
                        nodes=config.nodes,
                        flows=config.flows,
                        mac=mac,
                        run_seed=idx,
                        duration=scale.duration,
                        warmup=scale.warmup,
                        mobility=mobility,
                    )
                )

    def reduce(results: List[TrialResult]) -> MobilitySweepResult:
        totals: Dict[float, Dict[str, List[float]]] = {
            s: {name: [] for name in protocols} for s in speeds
        }
        it = iter(results)
        for speed in speeds:
            for config in configs:
                for name in protocols:
                    res = next(it)
                    totals[speed][name].append(
                        res.mbps(config.s1, config.r1)
                        + res.mbps(config.s2, config.r2)
                    )
        return MobilitySweepResult(tuple(speeds), totals, configs)

    return ExperimentSpec("mobility", trials, reduce)


def run_mobility_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    speeds: Sequence[float] = (0.0, 0.5, 1.5, 3.0),
    backend=None,
    store: Optional[ResultStore] = None,
) -> MobilitySweepResult:
    spec = build_mobility_sweep(testbed, scale, seed, speeds)
    return run_experiment(spec, testbed, backend=backend, store=store)


@dataclass
class ChurnSweepResult:
    """CMAP vs DCF as senders join/leave: total throughput by churn period."""

    periods: Tuple[float, ...]
    #: toggle period in seconds (0 = no churn) -> protocol -> totals.
    totals: Dict[float, Dict[str, List[float]]]

    def median(self, period: float, protocol: str) -> float:
        return sample_median(self.totals[period][protocol])


def _churn_events(
    node: int, warmup: float, duration: float, period: float
) -> Tuple[ChurnEvent, ...]:
    """Alternate leave/join for ``node`` every ``period`` seconds.

    The first departure lands half a period into the measurement window so
    even a period comparable to the window produces real churn.
    """
    events: List[ChurnEvent] = []
    t = warmup + period / 2.0
    op = "leave"
    while t < duration:
        events.append((t, op, node))
        op = "join" if op == "leave" else "leave"
        t += period
    return tuple(events)


def build_churn_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    periods: Sequence[float] = (0.0, 4.0, 2.0),
    flows_n: int = 3,
) -> ExperimentSpec:
    """Sweep membership churn: one sender of an ``flows_n``-flow set toggles
    out of and back into the network every ``period`` seconds.

    Each departure dissolves every conflict involving the churner; each
    return must be re-learned from fresh loss measurements. Shorter periods
    stress the map's staleness machinery harder. Period 0 is the static
    control.
    """
    scale = scale or ExperimentScale()
    flow_sets = find_disjoint_flows(testbed, flows_n, scale.configs, seed)
    protocols = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cmap": MacSpec.of("cmap"),
    }
    trials: List[TrialSpec] = []
    for period in periods:
        for idx, flows in enumerate(flow_sets):
            churner = flows[0][0]  # first flow's sender toggles
            churn = (
                _churn_events(churner, scale.warmup, scale.duration, period)
                if period > 0
                else ()
            )
            nodes = tuple(dict.fromkeys(n for f in flows for n in f))
            for name, mac in protocols.items():
                trials.append(
                    TrialSpec(
                        trial_id=f"churn/p{period}/{idx}/{name}",
                        nodes=nodes,
                        flows=flows,
                        mac=mac,
                        run_seed=idx,
                        duration=scale.duration,
                        warmup=scale.warmup,
                        churn=churn,
                    )
                )

    def reduce(results: List[TrialResult]) -> ChurnSweepResult:
        totals: Dict[float, Dict[str, List[float]]] = {
            p: {name: [] for name in protocols} for p in periods
        }
        it = iter(results)
        for period in periods:
            for flows in flow_sets:
                for name in protocols:
                    res = next(it)
                    totals[period][name].append(
                        sum(res.mbps(s, r) for s, r in flows)
                    )
        return ChurnSweepResult(tuple(periods), totals)

    return ExperimentSpec("churn", trials, reduce)


def run_churn_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    periods: Sequence[float] = (0.0, 4.0, 2.0),
    flows_n: int = 3,
    backend=None,
    store: Optional[ResultStore] = None,
) -> ChurnSweepResult:
    spec = build_churn_sweep(testbed, scale, seed, periods, flows_n)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Fig. 14: hidden-interferer scatter (§5.4)
# ======================================================================
@dataclass
class ScatterPoint:
    """One Fig. 14 point plus the §5.4 CMAP expectation inputs."""

    triple: InterfererTriple
    min_prr: float  # min(PRR(I->R), PRR(I->S))
    isolated_mbps: float
    interfered_mbps: float
    #: p = max(pr + ps - 1, 0), set via :meth:`set_hear_probability`.
    _p: float = 0.0

    @property
    def normalized_throughput(self) -> float:
        if self.isolated_mbps <= 0:
            return 0.0
        return min(1.0, self.interfered_mbps / self.isolated_mbps)

    @property
    def hear_probability(self) -> float:
        """p = max(pr + ps - 1, 0): both S and R hear I (§5.4)."""
        return self._p

    def set_hear_probability(self, pr: float, ps: float) -> None:
        self._p = max(pr + ps - 1.0, 0.0)


@dataclass
class HiddenInterfererResult:
    """Fig. 14's scatter and the two §5.4 headline statistics."""

    points: List[ScatterPoint]
    #: fraction with normalised throughput < 0.5 AND min PRR < 0.5
    bottom_left_fraction: float
    #: E[p * 1 + (1 - p) * T] over all points (paper: 0.896)
    expected_cmap_throughput: float


def build_hidden_interferer_scatter(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ExperimentSpec:
    scale = scale or ExperimentScale()
    triples = find_hidden_interferer_triples(testbed, scale.triples, seed)
    blast = MacSpec.of("dcf", carrier_sense=False, acks=False)  # §5.4 footnote
    trials: List[TrialSpec] = []
    for idx, t in enumerate(triples):
        # Baseline: S -> R alone.
        trials.append(
            TrialSpec(
                trial_id=f"fig14/{idx}/isolated",
                nodes=(t.sender, t.receiver),
                flows=((t.sender, t.receiver),),
                mac=blast,
                run_seed=idx,
                duration=scale.duration / 2,
                warmup=scale.warmup / 2,
            )
        )
        # With the interferer blasting continuously.
        trials.append(
            TrialSpec(
                trial_id=f"fig14/{idx}/interfered",
                nodes=tuple({t.sender, t.receiver, t.interferer,
                             t.interferer_receiver}),
                flows=((t.sender, t.receiver),
                       (t.interferer, t.interferer_receiver)),
                mac=blast,
                run_seed=idx,
                duration=scale.duration / 2,
                warmup=scale.warmup / 2,
            )
        )

    links = testbed.links

    def reduce(results: List[TrialResult]) -> HiddenInterfererResult:
        points: List[ScatterPoint] = []
        for idx, t in enumerate(triples):
            isolated = results[2 * idx].mbps(t.sender, t.receiver)
            interfered = results[2 * idx + 1].mbps(t.sender, t.receiver)
            pr = links.prr(t.interferer, t.receiver)
            ps = links.prr(t.interferer, t.sender)
            point = ScatterPoint(t, min(pr, ps), isolated, interfered)
            point.set_hear_probability(pr, ps)
            points.append(point)
        usable = [p for p in points if p.isolated_mbps > 0.1]
        bottom_left = sum(
            1 for p in usable if p.normalized_throughput < 0.5 and p.min_prr < 0.5
        )
        expected = sum(
            p.hear_probability + (1 - p.hear_probability) * p.normalized_throughput
            for p in usable
        )
        n = max(1, len(usable))
        return HiddenInterfererResult(points, bottom_left / n, expected / n)

    return ExperimentSpec("fig14", trials, reduce)


def run_hidden_interferer_scatter(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> HiddenInterfererResult:
    spec = build_hidden_interferer_scatter(testbed, scale, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Figs. 17 / 18: access-point topologies (§5.6)
# ======================================================================
@dataclass
class ApResult:
    """Figs. 17 and 18: aggregate and per-sender throughput by N."""

    #: N -> protocol -> list of aggregate throughput (Mb/s), one per trial.
    aggregate: Dict[int, Dict[str, List[float]]]
    #: protocol -> pooled per-sender throughputs across all N and trials.
    per_sender: Dict[str, List[float]]
    #: N -> list of per-receiver header-or-trailer rates (CMAP runs).
    ht_rates: Dict[int, List[float]]


def build_ap_topology(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (3, 4, 5, 6),
    protocols: Optional[Dict[str, object]] = None,
) -> ExperimentSpec:
    scale = scale or ExperimentScale()
    if protocols is None:
        protocols = {
            "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
            "cs_off": MacSpec.of("dcf", carrier_sense=False, acks=True),
            "cmap": MacSpec.of("cmap"),
        }
    macs = {name: coerce_mac(m) for name, m in protocols.items()}
    plan: List[Tuple[int, int, ApTopology]] = []
    trials: List[TrialSpec] = []
    for n in n_values:
        for trial in range(scale.trials_per_n):
            topo = find_ap_topology(testbed, n, trial_seed=trial)
            plan.append((n, trial, topo))
            for name, mac in macs.items():
                trials.append(
                    TrialSpec(
                        trial_id=f"fig17/n{n}/t{trial}/{name}",
                        nodes=topo.nodes,
                        flows=topo.flows,
                        mac=mac,
                        run_seed=1000 * n + trial,
                        metrics=("ht_rates",) if name == "cmap" else (),
                        duration=scale.duration,
                        warmup=scale.warmup,
                    )
                )

    def reduce(results: List[TrialResult]) -> ApResult:
        aggregate: Dict[int, Dict[str, List[float]]] = {}
        per_sender: Dict[str, List[float]] = {name: [] for name in macs}
        ht_rates: Dict[int, List[float]] = {}
        it = iter(results)
        for n, trial, topo in plan:
            aggregate.setdefault(n, {name: [] for name in macs})
            ht_rates.setdefault(n, [])
            for name in macs:
                res = next(it)
                flows = [res.mbps(s, r) for s, r in topo.flows]
                aggregate[n][name].append(sum(flows))
                per_sender[name].extend(flows)
                if "ht_rates" in res.metrics:
                    ht_rates[n].extend(res.metrics["ht_rates"])
        return ApResult(aggregate, per_sender, ht_rates)

    return ExperimentSpec("fig17", trials, reduce)


def run_ap_topology(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (3, 4, 5, 6),
    protocols: Optional[Dict[str, object]] = None,
    backend=None,
    store: Optional[ResultStore] = None,
) -> ApResult:
    spec = build_ap_topology(testbed, scale, n_values, protocols)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Fig. 16 / Fig. 19: header-trailer reception statistics
# ======================================================================
@dataclass
class HeaderTrailerCdfResult:
    """Fig. 16: reception rates of header vs header-or-trailer per pair."""

    inrange_header: List[float]
    inrange_either: List[float]
    outofrange_header: List[float]
    outofrange_either: List[float]


def build_header_trailer_cdf(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Fig. 16: computed from CMAP runs of the §5.3 (senders in range) and
    §5.5 (senders out of range) experiments."""
    scale = scale or ExperimentScale()
    trials: List[TrialSpec] = []
    labels: List[str] = []
    for label, finder in (
        ("inrange", find_inrange_configs),
        ("outofrange", find_hidden_terminal_configs),
    ):
        configs = finder(testbed, scale.configs, seed)
        for idx, config in enumerate(configs):
            labels.append(label)
            trials.append(
                TrialSpec(
                    trial_id=f"fig16/{label}/{idx}",
                    nodes=config.nodes,
                    flows=config.flows,
                    mac=MacSpec.of("cmap"),
                    run_seed=idx,
                    duration=scale.duration,
                    warmup=scale.warmup,
                    metrics=("ht_stats",),
                )
            )

    def reduce(results: List[TrialResult]) -> HeaderTrailerCdfResult:
        out = {"inrange": ([], []), "outofrange": ([], [])}
        for label, res in zip(labels, results):
            for header, either in res.metrics["ht_stats"]:
                out[label][0].append(header)
                out[label][1].append(either)
        return HeaderTrailerCdfResult(
            inrange_header=out["inrange"][0],
            inrange_either=out["inrange"][1],
            outofrange_header=out["outofrange"][0],
            outofrange_either=out["outofrange"][1],
        )

    return ExperimentSpec("fig16", trials, reduce)


def run_header_trailer_cdf(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> HeaderTrailerCdfResult:
    spec = build_header_trailer_cdf(testbed, scale, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


@dataclass
class HtDensityResult:
    """Fig. 19: header-or-trailer reception rate vs concurrent sender count."""

    #: N -> list of per-receiver header-or-trailer rates.
    rates_by_n: Dict[int, List[float]]


def build_header_trailer_density(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seed: int = 0,
) -> ExperimentSpec:
    """Fig. 19: N concurrent saturated CMAP flows on random potential
    transmission links; collect P(header or trailer) at each receiver."""
    scale = scale or ExperimentScale()
    links = testbed.links
    tx_links = [
        (a, b)
        for a, b in itertools.permutations(links.node_ids, 2)
        if links.potential_tx_link(a, b)
    ]
    rng = testbed.rngs.fork("htdensity", seed).stream("sample")
    trials: List[TrialSpec] = []
    trial_n: List[int] = []
    for n in n_values:
        for trial in range(scale.ht_configs_per_n):
            # Sample n disjoint flows.
            flows: List[Tuple[int, int]] = []
            used: set = set()
            attempts = 0
            while len(flows) < n and attempts < 2000:
                attempts += 1
                s, r = tx_links[int(rng.integers(0, len(tx_links)))]
                if s in used or r in used:
                    continue
                flows.append((s, r))
                used.update((s, r))
            if len(flows) < n:
                continue
            trial_n.append(n)
            trials.append(
                TrialSpec(
                    trial_id=f"fig19/n{n}/t{trial}",
                    nodes=tuple(used),
                    flows=tuple(flows),
                    mac=MacSpec.of("cmap"),
                    run_seed=100 * n + trial,
                    duration=scale.duration,
                    warmup=scale.warmup,
                    metrics=("ht_rates",),
                )
            )

    def reduce(results: List[TrialResult]) -> HtDensityResult:
        rates_by_n: Dict[int, List[float]] = {n: [] for n in n_values}
        for n, res in zip(trial_n, results):
            rates_by_n[n].extend(res.metrics["ht_rates"])
        return HtDensityResult(rates_by_n)

    return ExperimentSpec("fig19", trials, reduce)


def run_header_trailer_density(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> HtDensityResult:
    spec = build_header_trailer_density(testbed, scale, n_values, seed)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# §5.7: two-hop content dissemination mesh
# ======================================================================
@dataclass
class MeshResult:
    """§5.7: aggregate leaf throughput per topology and protocol."""

    #: protocol -> list of aggregate min-throughput (Mb/s), one per topology.
    aggregate: Dict[str, List[float]]

    def mean(self, protocol: str) -> float:
        vals = self.aggregate[protocol]
        return sum(vals) / len(vals) if vals else 0.0

    def gain(self, protocol: str = "cmap", baseline: str = "cs_on") -> float:
        base = self.mean(baseline)
        return self.mean(protocol) / base if base > 0 else float("inf")


def build_mesh_dissemination(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    fanout: int = 3,
    include_extensions: bool = False,
) -> ExperimentSpec:
    """§5.7: S broadcasts a batch to the A_i (phase 1), then the A_i forward
    to their B_i concurrently (phase 2). Per-leaf throughput is the min of
    its two hops; the aggregate sums over leaves (the paper reports CMAP
    beating carrier sense by 52 % on this aggregate, driven by exposed
    terminals among the A_i -> B_i transfers)."""
    scale = scale or ExperimentScale()
    topologies = find_mesh_topologies(testbed, scale.mesh_topologies, fanout, seed)
    protocols: Dict[str, MacSpec] = {
        "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
        "cmap": MacSpec.of("cmap"),
    }
    if include_extensions:
        # §5.6's robustness fix + ACK-piggybacked interferer lists: helps
        # most on conflict-heavy topologies where deaf senders miss headers.
        protocols["cmap_ext"] = MacSpec.of(
            "cmap", replicate_ht_in_data=True, piggyback_ilist=True
        )
    trials: List[TrialSpec] = []
    for idx, topo in enumerate(topologies):
        for name, mac in protocols.items():
            # Phase 1: single broadcast sender; per-forwarder goodput.
            trials.append(
                TrialSpec(
                    trial_id=f"mesh/{idx}/{name}/phase1",
                    nodes=topo.nodes,
                    flows=((topo.source, BROADCAST),),
                    measure=tuple((topo.source, a) for a in topo.forwarders),
                    mac=mac,
                    run_seed=2 * idx,
                    duration=scale.duration / 2,
                    warmup=scale.warmup / 2,
                )
            )
            # Phase 2: concurrent forwarder -> leaf transfers.
            trials.append(
                TrialSpec(
                    trial_id=f"mesh/{idx}/{name}/phase2",
                    nodes=topo.nodes,
                    flows=tuple(zip(topo.forwarders, topo.leaves)),
                    mac=mac,
                    run_seed=2 * idx + 1,
                    duration=scale.duration / 2,
                    warmup=scale.warmup / 2,
                )
            )

    def reduce(results: List[TrialResult]) -> MeshResult:
        aggregate: Dict[str, List[float]] = {name: [] for name in protocols}
        it = iter(results)
        for idx, topo in enumerate(topologies):
            for name in protocols:
                phase1 = next(it)
                phase2 = next(it)
                total = 0.0
                for a, b in zip(topo.forwarders, topo.leaves):
                    total += min(phase1.mbps(topo.source, a), phase2.mbps(a, b))
                aggregate[name].append(total)
        return MeshResult(aggregate)

    return ExperimentSpec("mesh", trials, reduce)


def run_mesh_dissemination(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    fanout: int = 3,
    include_extensions: bool = False,
    backend=None,
    store: Optional[ResultStore] = None,
) -> MeshResult:
    spec = build_mesh_dissemination(testbed, scale, seed, fanout,
                                    include_extensions)
    return run_experiment(spec, testbed, backend=backend, store=store)


# ======================================================================
# Scale sweep: generated worlds with RSS-cutoff neighborhood culling
# ======================================================================
#: Topology families the scale sweep exercises by default (all registered
#: in repro.experiments.topologies.TOPOLOGIES).
DEFAULT_SCALE_TOPOLOGIES: Tuple[str, ...] = (
    "grid", "uniform", "clustered", "corridor", "hidden_cells",
    "exposed_cells",
)


@dataclass
class ScaleCaseResult:
    """One generated world's outcome: aggregate throughput + fan-out."""

    topology: str
    n: int
    flows: int
    #: protocol -> aggregate throughput (Mb/s), one entry per trial seed.
    totals: Dict[str, List[float]]
    #: culling diagnostics from the "fanout" metric (first cmap trial, or
    #: the first trial carrying the metric when no protocol is named
    #: "cmap"): tables / attached / mean_delivered / mean_interference_only.
    fanout: Dict[str, float] = field(default_factory=dict)

    def median(self, protocol: str) -> float:
        return sample_median(self.totals[protocol])


@dataclass
class ScaleSweepResult:
    """The scale sweep: every (topology family, N) world's case result."""

    cases: List[ScaleCaseResult]

    def case(self, topology: str, n: int) -> ScaleCaseResult:
        """Look up one case. Note cell tilings round N down to a multiple
        of 4 at build time, so ask for the rounded value (it is what the
        report prints)."""
        for c in self.cases:
            if c.topology == topology and c.n == n:
                return c
        available = [(c.topology, c.n) for c in self.cases]
        raise KeyError(
            f"no scale case {topology!r} at N={n}; available: {available}"
        )


def build_scale_sweep(
    scale: Optional[ExperimentScale] = None,
    seed: int = 1,
    ns: Optional[Sequence[int]] = None,
    topologies: Sequence[str] = DEFAULT_SCALE_TOPOLOGIES,
    protocols: Optional[Dict[str, object]] = None,
    flow_seed: int = 0,
) -> List[Tuple[TopologySpec, Testbed, ExperimentSpec]]:
    """Build one experiment per (topology family, N) generated world.

    Each case attaches *all* N nodes (idle nodes still carrier-sense,
    interfere, and — under CMAP — gossip interferer lists, which is exactly
    the density cost culling bounds) and saturates a constant-density flow
    workload. Trials run with the topology's culling floors
    (``delivery_floor_dbm`` / ``interference_floor_dbm``), so per-frame
    fan-out is bounded by physical neighborhood instead of N.

    Returns (topology spec, its testbed, its ExperimentSpec) per case;
    :func:`run_scale_sweep` executes them against their own testbeds —
    unlike the paper figures, there is no single shared floor.
    """
    scale = scale or ExperimentScale()
    if ns is None:
        ns = scale.scale_ns
    if protocols is None:
        protocols = {
            "cs_on": MacSpec.of("dcf", carrier_sense=True, acks=True),
            "cmap": MacSpec.of("cmap"),
        }
    macs = {name: coerce_mac(m) for name, m in protocols.items()}
    cases: List[Tuple[TopologySpec, Testbed, ExperimentSpec]] = []
    built: set = set()
    for topology in topologies:
        for n in ns:
            topo = build_topology(topology, n)
            if (topology, topo.n) in built:
                continue  # cell tilings round N down; skip duplicate worlds
            built.add((topology, topo.n))
            testbed = topo.build(seed=seed)
            flows = topo.flows(testbed, default_flows_n(topo.n), flow_seed)
            nodes = tuple(sorted(testbed.positions))
            # The world digest keys persisted results to the *geometry*,
            # not just the family label: TrialSpec fingerprints cover
            # nodes/flows/floors but not placement params or floor sizing,
            # so without it a store resumed after a topology-default change
            # could serve results computed on a different world.
            world = format(
                stable_hash(
                    topo.kind, topo.n, topo.area_per_node_m2, topo.aspect,
                    topo.params, repr(topo.shadowing_sigma_db), seed,
                ),
                "08x",
            )[:8]
            trials: List[TrialSpec] = []
            for t in range(scale.trials_per_n):
                for name, mac in macs.items():
                    trials.append(
                        TrialSpec(
                            trial_id=f"scale/{topo.label}/w{world}/t{t}/{name}",
                            nodes=nodes,
                            flows=flows,
                            mac=mac,
                            run_seed=t,
                            duration=scale.duration,
                            warmup=scale.warmup,
                            metrics=("fanout",),
                            delivery_floor_dbm=topo.delivery_floor_dbm,
                            interference_floor_dbm=topo.interference_floor_dbm,
                        )
                    )

            def reduce(
                results: List[TrialResult],
                topo=topo,
                flows=flows,
                names=list(macs),
                trials_per_n=scale.trials_per_n,
            ) -> ScaleCaseResult:
                totals: Dict[str, List[float]] = {name: [] for name in names}
                #: protocol -> its first trial's fanout metric.
                by_proto: Dict[str, Dict[str, float]] = {}
                it = iter(results)
                for _t in range(trials_per_n):
                    for name in names:
                        res = next(it)
                        totals[name].append(
                            sum(res.mbps(s, r) for s, r in flows)
                        )
                        if name not in by_proto and "fanout" in res.metrics:
                            by_proto[name] = res.metrics["fanout"]
                # Report CMAP's census (the protocol whose gossip load the
                # culling bounds); fall back to whichever ran first.
                fanout = by_proto.get(
                    "cmap", next(iter(by_proto.values())) if by_proto else {}
                )
                return ScaleCaseResult(
                    topo.kind, topo.n, len(flows), totals, fanout
                )

            cases.append(
                (topo, testbed, ExperimentSpec(f"scale/{topo.label}", trials, reduce))
            )
    return cases


def run_scale_sweep(
    scale: Optional[ExperimentScale] = None,
    seed: int = 1,
    ns: Optional[Sequence[int]] = None,
    topologies: Sequence[str] = DEFAULT_SCALE_TOPOLOGIES,
    protocols: Optional[Dict[str, object]] = None,
    flow_seed: int = 0,
    backend=None,
    store: Optional[ResultStore] = None,
) -> ScaleSweepResult:
    cases = build_scale_sweep(scale, seed, ns, topologies, protocols, flow_seed)
    results = [
        run_experiment(spec, testbed, backend=backend, store=store)
        for _topo, testbed, spec in cases
    ]
    return ScaleSweepResult(results)


# ======================================================================
# Named sweep-builder registry
# ======================================================================
def _build_ap_topology_seeded(testbed, scale=None, seed=0, **params):
    # build_ap_topology derives trial seeds from (n, trial) internally; the
    # registry's uniform (testbed, scale, seed, **params) signature swallows
    # the unused seed so remote submits need no per-builder knowledge.
    return build_ap_topology(testbed, scale, **params)


#: figure/sweep name -> builder with the uniform signature
#: ``builder(testbed, scale=None, seed=0, **params) -> ExperimentSpec``.
#: This is the contract of the service's HTTP submit-by-name path: the
#: server resolves the name, builds the spec against its own testbed, and
#: queues the trials. Every entry's specs must survive the wire round trip
#: (``TrialSpec.to_wire``/``from_wire``) equal and fingerprint-identical —
#: enforced by tests/test_spec_wire.py. The scale sweep is absent by
#: design: it builds one testbed per generated world, so it cannot run
#: against the service's single shared testbed.
SWEEP_BUILDERS: Dict[str, "Callable[..., ExperimentSpec]"] = {
    "calibration": build_single_link_calibration,
    "fig12": build_exposed_terminals,
    "fig13": build_inrange_senders,
    "fig14": build_hidden_interferer_scatter,
    "fig15": build_hidden_terminals,
    "fig16": build_header_trailer_cdf,
    "fig17": _build_ap_topology_seeded,
    "fig19": build_header_trailer_density,
    "fig20": build_bitrate_sweep,
    "mesh": build_mesh_dissemination,
    "mobility": build_mobility_sweep,
    "churn": build_churn_sweep,
}
