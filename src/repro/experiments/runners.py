"""Per-figure experiment runners (paper §5).

Each ``run_*`` function regenerates the data behind one table or figure and
returns a plain dataclass of series; ``benchmarks/`` wraps them with printing
and pytest-benchmark timing, and ``repro.experiments.report`` renders them as
text tables shaped like the paper's figures.

All runners accept an :class:`ExperimentScale`; the default is a reduced
scale that preserves the papers' *shapes* in seconds-to-minutes of wall time.
``ExperimentScale.paper()`` matches the paper's sample sizes (50 configs per
CDF, 500 triples, 10 trials per N, 100 s runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.params import CmapParams, LatencyProfile
from repro.mac.dcf import DcfParams
from repro.experiments.scenarios import (
    ApTopology,
    InterfererTriple,
    MeshTopology,
    PairConfig,
    find_ap_topology,
    find_exposed_terminal_configs,
    find_hidden_interferer_triples,
    find_hidden_terminal_configs,
    find_inrange_configs,
    find_mesh_topologies,
)
from repro.net.testbed import Testbed
from repro.network import MacFactory, Network, cmap_factory, dcf_factory
from repro.phy.modulation import RATES, Rate, RATE_6M


@dataclass
class ExperimentScale:
    """Sample sizes and run lengths for the harness."""

    configs: int = 10  # pair configs per CDF (paper: 50)
    duration: float = 12.0  # run length, seconds (paper: 100)
    warmup: float = 5.0  # excluded from measurement (paper: 40)
    triples: int = 60  # hidden-interferer triples (paper: 500)
    trials_per_n: int = 2  # AP client draws per N (paper: 10)
    mesh_topologies: int = 4  # mesh instances (paper: 10)
    ht_configs_per_n: int = 4  # Fig. 19 topologies per sender count

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(
            configs=50,
            duration=100.0,
            warmup=40.0,
            triples=500,
            trials_per_n=10,
            mesh_topologies=10,
            ht_configs_per_n=8,
        )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """A minutes-scale preset for CI and benchmarks."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """A seconds-scale preset for tests."""
        return cls(
            configs=3,
            duration=6.0,
            warmup=2.5,
            triples=10,
            trials_per_n=1,
            mesh_topologies=2,
            ht_configs_per_n=2,
        )


#: The protocol line-up used across figures, keyed by the paper's labels.
def protocol_factories(
    cmap_params: Optional[CmapParams] = None,
    data_rate: Rate = RATE_6M,
) -> Dict[str, MacFactory]:
    def dcf(cs: bool, acks: bool) -> MacFactory:
        return dcf_factory(params=DcfParams(
            carrier_sense=cs, acks=acks, data_rate=data_rate))

    params = cmap_params or CmapParams(data_rate=data_rate)
    return {
        "cs_on": dcf(True, True),
        "cs_off_acks": dcf(False, True),
        "cs_off_noacks": dcf(False, False),
        "cmap": cmap_factory(params),
    }


def _run_pair(
    testbed: Testbed,
    config: PairConfig,
    factory: MacFactory,
    scale: ExperimentScale,
    run_seed: int,
    track_tx: bool = False,
) -> "Network":
    net = Network(testbed, run_seed=run_seed, track_tx=track_tx)
    for n in config.nodes:
        net.add_node(n, factory)
    for s, r in config.flows:
        net.add_saturated_flow(s, r)
    net.result = net.run(duration=scale.duration, warmup=scale.warmup)
    return net


# ======================================================================
# §4.2: single-link calibration
# ======================================================================
@dataclass
class CalibrationResult:
    """Paper §4.2: CMAP 5.04 Mb/s vs 802.11 5.07 Mb/s on one link."""

    cmap_mbps: float
    dcf_mbps: float
    pair: Tuple[int, int]


def run_single_link_calibration(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> CalibrationResult:
    scale = scale or ExperimentScale()
    links = testbed.links
    pair = None
    for a in links.node_ids:
        for b in links.node_ids:
            if a != b and links.potential_tx_link(a, b) and links.strong_signal(a, b):
                pair = (a, b)
                break
        if pair:
            break
    if pair is None:
        raise RuntimeError("testbed has no strong potential transmission link")
    results = {}
    for name, factory in (
        ("cmap", cmap_factory()),
        ("dcf", dcf_factory(True, True)),
    ):
        net = Network(testbed, run_seed=seed)
        for n in pair:
            net.add_node(n, factory)
        net.add_saturated_flow(*pair)
        res = net.run(duration=scale.duration, warmup=scale.warmup)
        results[name] = res.flow_mbps(*pair)
    return CalibrationResult(results["cmap"], results["dcf"], pair)


# ======================================================================
# Figs. 12 / 13 / 15 / 20: two-pair CDF experiments
# ======================================================================
@dataclass
class PairCdfResult:
    """One CDF figure: per-protocol total throughput across configurations."""

    figure: str
    configs: List[PairConfig]
    #: protocol label -> total throughput (Mb/s) per configuration.
    totals: Dict[str, List[float]]
    #: protocol label -> per-flow throughput pairs per configuration.
    per_flow: Dict[str, List[Tuple[float, float]]]
    #: CMAP concurrency fraction per configuration (when measured).
    cmap_concurrency: List[float] = field(default_factory=list)

    def median(self, protocol: str) -> float:
        vals = sorted(self.totals[protocol])
        return vals[len(vals) // 2]

    def gain_over(self, protocol: str, baseline: str) -> float:
        """Ratio of medians — the paper's headline "2x over CSMA"."""
        base = self.median(baseline)
        return self.median(protocol) / base if base > 0 else float("inf")


def _pair_cdf_experiment(
    figure: str,
    testbed: Testbed,
    configs: List[PairConfig],
    protocols: Dict[str, MacFactory],
    scale: ExperimentScale,
    track_cmap_concurrency: bool = True,
) -> PairCdfResult:
    totals: Dict[str, List[float]] = {name: [] for name in protocols}
    per_flow: Dict[str, List[Tuple[float, float]]] = {name: [] for name in protocols}
    concurrency: List[float] = []
    for idx, config in enumerate(configs):
        for name, factory in protocols.items():
            track = track_cmap_concurrency and name.startswith("cmap")
            net = _run_pair(testbed, config, factory, scale, run_seed=idx,
                            track_tx=track)
            res = net.result
            f1 = res.flow_mbps(config.s1, config.r1)
            f2 = res.flow_mbps(config.s2, config.r2)
            totals[name].append(f1 + f2)
            per_flow[name].append((f1, f2))
            if track:
                concurrency.append(res.concurrency_fraction(config.senders))
    return PairCdfResult(figure, configs, totals, per_flow, concurrency)


def run_pair_cdf_experiment(
    figure: str,
    testbed: Testbed,
    configs: List[PairConfig],
    protocols: Dict[str, MacFactory],
    scale: ExperimentScale,
    track_cmap_concurrency: bool = True,
) -> PairCdfResult:
    """Public entry for custom two-pair CDF experiments (ablations)."""
    return _pair_cdf_experiment(
        figure, testbed, configs, protocols, scale, track_cmap_concurrency
    )


def run_exposed_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    include_win1: bool = True,
) -> PairCdfResult:
    """Fig. 12: exposed terminals. Curves: CS+acks, CS-off+no-acks, CMAP,
    and CMAP with a window of one virtual packet (the §5.2 ablation)."""
    scale = scale or ExperimentScale()
    configs = find_exposed_terminal_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": dcf_factory(True, True),
        "cs_off_noacks": dcf_factory(False, False),
        "cmap": cmap_factory(),
    }
    if include_win1:
        protocols["cmap_win1"] = cmap_factory(CmapParams(nwindow=1))
    return _pair_cdf_experiment("fig12", testbed, configs, protocols, scale)


def run_inrange_senders(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> PairCdfResult:
    """Fig. 13: two senders in range of each other, cross links free."""
    scale = scale or ExperimentScale()
    configs = find_inrange_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": dcf_factory(True, True),
        "cs_off_acks": dcf_factory(False, True),
        "cs_off_noacks": dcf_factory(False, False),
        "cmap": cmap_factory(),
    }
    return _pair_cdf_experiment("fig13", testbed, configs, protocols, scale)


def run_hidden_terminals(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> PairCdfResult:
    """Fig. 15: senders out of range, receivers hear both senders."""
    scale = scale or ExperimentScale()
    configs = find_hidden_terminal_configs(testbed, scale.configs, seed)
    protocols = {
        "cs_on": dcf_factory(True, True),
        "cs_off_acks": dcf_factory(False, True),
        "cmap": cmap_factory(),
    }
    return _pair_cdf_experiment("fig15", testbed, configs, protocols, scale)


@dataclass
class BitrateSweepResult:
    """Fig. 20: exposed-terminal CDFs at 6/12/18 Mb/s."""

    #: rate (Mb/s) -> protocol -> totals across configs.
    by_rate: Dict[int, PairCdfResult]


def run_bitrate_sweep(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    rates: Sequence[int] = (6, 12, 18),
) -> BitrateSweepResult:
    """Fig. 20: repeat the exposed-terminal experiment at higher bit-rates.

    Control frames (headers, trailers, ACKs, interferer lists) stay at the
    base rate, as in §5.8.
    """
    scale = scale or ExperimentScale()
    configs = find_exposed_terminal_configs(testbed, scale.configs, seed)
    out: Dict[int, PairCdfResult] = {}
    for mbps in rates:
        rate = RATES[mbps]
        protocols = {
            "cs_on": dcf_factory(
                params=DcfParams(carrier_sense=True, acks=True, data_rate=rate)
            ),
            "cmap": cmap_factory(CmapParams(data_rate=rate, control_rate=RATE_6M)),
        }
        out[mbps] = _pair_cdf_experiment(
            f"fig20@{mbps}", testbed, configs, protocols, scale
        )
    return BitrateSweepResult(out)


# ======================================================================
# Fig. 14: hidden-interferer scatter (§5.4)
# ======================================================================
@dataclass
class ScatterPoint:
    """One Fig. 14 point plus the §5.4 CMAP expectation inputs."""

    triple: InterfererTriple
    min_prr: float  # min(PRR(I->R), PRR(I->S))
    isolated_mbps: float
    interfered_mbps: float

    @property
    def normalized_throughput(self) -> float:
        if self.isolated_mbps <= 0:
            return 0.0
        return min(1.0, self.interfered_mbps / self.isolated_mbps)

    @property
    def hear_probability(self) -> float:
        """p = max(pr + ps - 1, 0): both S and R hear I (§5.4)."""
        return self._p

    def set_hear_probability(self, pr: float, ps: float) -> None:
        self._p = max(pr + ps - 1.0, 0.0)


@dataclass
class HiddenInterfererResult:
    """Fig. 14's scatter and the two §5.4 headline statistics."""

    points: List[ScatterPoint]
    #: fraction with normalised throughput < 0.5 AND min PRR < 0.5
    bottom_left_fraction: float
    #: E[p * 1 + (1 - p) * T] over all points (paper: 0.896)
    expected_cmap_throughput: float


def run_hidden_interferer_scatter(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> HiddenInterfererResult:
    scale = scale or ExperimentScale()
    triples = find_hidden_interferer_triples(testbed, scale.triples, seed)
    links = testbed.links
    blast = dcf_factory(False, False)  # CS and ACKs disabled (§5.4 footnote)
    points: List[ScatterPoint] = []
    for idx, t in enumerate(triples):
        # Baseline: S -> R alone.
        net = Network(testbed, run_seed=idx)
        for n in (t.sender, t.receiver):
            net.add_node(n, blast)
        net.add_saturated_flow(t.sender, t.receiver)
        res = net.run(duration=scale.duration / 2, warmup=scale.warmup / 2)
        isolated = res.flow_mbps(t.sender, t.receiver)
        # With the interferer blasting continuously.
        net = Network(testbed, run_seed=idx)
        for n in {t.sender, t.receiver, t.interferer, t.interferer_receiver}:
            net.add_node(n, blast)
        net.add_saturated_flow(t.sender, t.receiver)
        net.add_saturated_flow(t.interferer, t.interferer_receiver)
        res = net.run(duration=scale.duration / 2, warmup=scale.warmup / 2)
        interfered = res.flow_mbps(t.sender, t.receiver)

        pr = links.prr(t.interferer, t.receiver)
        ps = links.prr(t.interferer, t.sender)
        point = ScatterPoint(t, min(pr, ps), isolated, interfered)
        point.set_hear_probability(pr, ps)
        points.append(point)

    usable = [p for p in points if p.isolated_mbps > 0.1]
    bottom_left = sum(
        1 for p in usable if p.normalized_throughput < 0.5 and p.min_prr < 0.5
    )
    expected = sum(
        p.hear_probability + (1 - p.hear_probability) * p.normalized_throughput
        for p in usable
    )
    n = max(1, len(usable))
    return HiddenInterfererResult(points, bottom_left / n, expected / n)


# ======================================================================
# Figs. 17 / 18: access-point topologies (§5.6)
# ======================================================================
@dataclass
class ApResult:
    """Figs. 17 and 18: aggregate and per-sender throughput by N."""

    #: N -> protocol -> list of aggregate throughput (Mb/s), one per trial.
    aggregate: Dict[int, Dict[str, List[float]]]
    #: protocol -> pooled per-sender throughputs across all N and trials.
    per_sender: Dict[str, List[float]]
    #: N -> list of per-receiver header-or-trailer rates (CMAP runs).
    ht_rates: Dict[int, List[float]]


def run_ap_topology(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (3, 4, 5, 6),
    protocols: Optional[Dict[str, MacFactory]] = None,
) -> ApResult:
    scale = scale or ExperimentScale()
    if protocols is None:
        protocols = {
            "cs_on": dcf_factory(True, True),
            "cs_off": dcf_factory(False, True),
            "cmap": cmap_factory(),
        }
    aggregate: Dict[int, Dict[str, List[float]]] = {}
    per_sender: Dict[str, List[float]] = {name: [] for name in protocols}
    ht_rates: Dict[int, List[float]] = {}
    for n in n_values:
        aggregate[n] = {name: [] for name in protocols}
        ht_rates[n] = []
        for trial in range(scale.trials_per_n):
            topo = find_ap_topology(testbed, n, trial_seed=trial)
            for name, factory in protocols.items():
                net = Network(testbed, run_seed=1000 * n + trial)
                for node in topo.nodes:
                    net.add_node(node, factory)
                for s, r in topo.flows:
                    net.add_saturated_flow(s, r)
                res = net.run(duration=scale.duration, warmup=scale.warmup)
                flows = [res.flow_mbps(s, r) for s, r in topo.flows]
                aggregate[n][name].append(sum(flows))
                per_sender[name].extend(flows)
                if name == "cmap":
                    ht_rates[n].extend(
                        _collect_ht_rates(net, topo.flows)
                    )
    return ApResult(aggregate, per_sender, ht_rates)


def _collect_ht_rates(net: Network, flows: Sequence[Tuple[int, int]]) -> List[float]:
    """Per-receiver P(header or trailer) for each flow of a CMAP run."""
    rates = []
    for s, r in flows:
        smac = net.nodes[s].mac
        rmac = net.nodes[r].mac
        sent = smac.cstats.vpkts_sent_to.get(r, 0)
        if sent > 0:
            rates.append(rmac.header_or_trailer_rate(s, sent))
    return rates


# ======================================================================
# Fig. 16 / Fig. 19: header-trailer reception statistics
# ======================================================================
@dataclass
class HeaderTrailerCdfResult:
    """Fig. 16: reception rates of header vs header-or-trailer per pair."""

    inrange_header: List[float]
    inrange_either: List[float]
    outofrange_header: List[float]
    outofrange_either: List[float]


def run_header_trailer_cdf(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> HeaderTrailerCdfResult:
    """Fig. 16: computed from CMAP runs of the §5.3 (senders in range) and
    §5.5 (senders out of range) experiments."""
    scale = scale or ExperimentScale()
    out = {"inrange": ([], []), "outofrange": ([], [])}
    for label, finder in (
        ("inrange", find_inrange_configs),
        ("outofrange", find_hidden_terminal_configs),
    ):
        configs = finder(testbed, scale.configs, seed)
        for idx, config in enumerate(configs):
            net = _run_pair(
                testbed, config, cmap_factory(), scale, run_seed=idx
            )
            for s, r in config.flows:
                smac = net.nodes[s].mac
                rmac = net.nodes[r].mac
                sent = smac.cstats.vpkts_sent_to.get(r, 0)
                if sent <= 0:
                    continue
                out[label][0].append(rmac.header_rate(s, sent))
                out[label][1].append(rmac.header_or_trailer_rate(s, sent))
    return HeaderTrailerCdfResult(
        inrange_header=out["inrange"][0],
        inrange_either=out["inrange"][1],
        outofrange_header=out["outofrange"][0],
        outofrange_either=out["outofrange"][1],
    )


@dataclass
class HtDensityResult:
    """Fig. 19: header-or-trailer reception rate vs concurrent sender count."""

    #: N -> list of per-receiver header-or-trailer rates.
    rates_by_n: Dict[int, List[float]]


def run_header_trailer_density(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    n_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seed: int = 0,
) -> HtDensityResult:
    """Fig. 19: N concurrent saturated CMAP flows on random potential
    transmission links; collect P(header or trailer) at each receiver."""
    import itertools as _it

    scale = scale or ExperimentScale()
    links = testbed.links
    tx_links = [
        (a, b)
        for a, b in _it.permutations(links.node_ids, 2)
        if links.potential_tx_link(a, b)
    ]
    rng = testbed.rngs.fork("htdensity", seed).stream("sample")
    rates_by_n: Dict[int, List[float]] = {}
    for n in n_values:
        rates_by_n[n] = []
        for trial in range(scale.ht_configs_per_n):
            # Sample n disjoint flows.
            flows: List[Tuple[int, int]] = []
            used: set = set()
            attempts = 0
            while len(flows) < n and attempts < 2000:
                attempts += 1
                s, r = tx_links[int(rng.integers(0, len(tx_links)))]
                if s in used or r in used:
                    continue
                flows.append((s, r))
                used.update((s, r))
            if len(flows) < n:
                continue
            net = Network(testbed, run_seed=100 * n + trial)
            for node in used:
                net.add_node(node, cmap_factory())
            for s, r in flows:
                net.add_saturated_flow(s, r)
            net.run(duration=scale.duration, warmup=scale.warmup)
            rates_by_n[n].extend(_collect_ht_rates(net, flows))
    return HtDensityResult(rates_by_n)


# ======================================================================
# §5.7: two-hop content dissemination mesh
# ======================================================================
@dataclass
class MeshResult:
    """§5.7: aggregate leaf throughput per topology and protocol."""

    #: protocol -> list of aggregate min-throughput (Mb/s), one per topology.
    aggregate: Dict[str, List[float]]

    def mean(self, protocol: str) -> float:
        vals = self.aggregate[protocol]
        return sum(vals) / len(vals) if vals else 0.0

    def gain(self, protocol: str = "cmap", baseline: str = "cs_on") -> float:
        base = self.mean(baseline)
        return self.mean(protocol) / base if base > 0 else float("inf")


def run_mesh_dissemination(
    testbed: Testbed,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    fanout: int = 3,
    include_extensions: bool = False,
) -> MeshResult:
    """§5.7: S broadcasts a batch to the A_i (phase 1), then the A_i forward
    to their B_i concurrently (phase 2). Per-leaf throughput is the min of
    its two hops; the aggregate sums over leaves (the paper reports CMAP
    beating carrier sense by 52 % on this aggregate, driven by exposed
    terminals among the A_i -> B_i transfers)."""
    scale = scale or ExperimentScale()
    topologies = find_mesh_topologies(testbed, scale.mesh_topologies, fanout, seed)
    protocols: Dict[str, MacFactory] = {
        "cs_on": dcf_factory(True, True),
        "cmap": cmap_factory(),
    }
    if include_extensions:
        # §5.6's robustness fix + ACK-piggybacked interferer lists: helps
        # most on conflict-heavy topologies where deaf senders miss headers.
        protocols["cmap_ext"] = cmap_factory(
            CmapParams(replicate_ht_in_data=True, piggyback_ilist=True)
        )
    aggregate: Dict[str, List[float]] = {name: [] for name in protocols}
    for idx, topo in enumerate(topologies):
        for name, factory in protocols.items():
            # Phase 1: single broadcast sender; per-forwarder goodput.
            net1 = Network(testbed, run_seed=2 * idx)
            for node in topo.nodes:
                net1.add_node(node, factory)
            from repro.phy.frames import BROADCAST

            net1.add_saturated_flow(topo.source, BROADCAST)
            res1 = net1.run(duration=scale.duration / 2, warmup=scale.warmup / 2)
            phase1 = {
                a: res1.flow_mbps(topo.source, a) for a in topo.forwarders
            }
            # Phase 2: concurrent forwarder -> leaf transfers.
            net2 = Network(testbed, run_seed=2 * idx + 1)
            for node in topo.nodes:
                net2.add_node(node, factory)
            for a, b in zip(topo.forwarders, topo.leaves):
                net2.add_saturated_flow(a, b)
            res2 = net2.run(duration=scale.duration / 2, warmup=scale.warmup / 2)
            total = 0.0
            for a, b in zip(topo.forwarders, topo.leaves):
                total += min(phase1[a], res2.flow_mbps(a, b))
            aggregate[name].append(total)
    return MeshResult(aggregate)
