"""Text rendering of experiment results, shaped like the paper's figures.

Benchmarks call these to print the same rows/series the paper reports, so a
reader can diff our measured shape against the published one (recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.stats import Cdf, summarize
from repro.experiments.runners import (
    ApResult,
    BitrateSweepResult,
    CalibrationResult,
    ChurnSweepResult,
    HeaderTrailerCdfResult,
    HiddenInterfererResult,
    HtDensityResult,
    MeshResult,
    MobilitySweepResult,
    PairCdfResult,
    ScaleSweepResult,
    sample_median,
)


def _cdf_table(curves: Dict[str, Sequence[float]], unit: str = "Mb/s") -> str:
    """Quantile table for several named CDFs (the paper's CDF figures)."""
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    width = max(len(name) for name in curves) + 2
    head = "".join(f"{f'p{int(q*100)}':>9}" for q in quantiles)
    lines = [f"{'curve':<{width}}{head}   ({unit})"]
    for name, values in curves.items():
        cdf = Cdf(values)
        row = "".join(f"{cdf.quantile(q):>9.2f}" for q in quantiles)
        lines.append(f"{name:<{width}}{row}")
    return "\n".join(lines)


def render_calibration(result: CalibrationResult) -> str:
    return (
        "single-link calibration (paper §4.2: CMAP 5.04, 802.11 5.07 Mb/s)\n"
        f"  CMAP  : {result.cmap_mbps:.2f} Mb/s\n"
        f"  802.11: {result.dcf_mbps:.2f} Mb/s  (pair {result.pair})"
    )


def render_pair_cdf(result: PairCdfResult, title: str) -> str:
    lines = [title, _cdf_table(result.totals)]
    if "cmap" in result.totals and "cs_on" in result.totals:
        lines.append(
            f"median gain CMAP / CS-on: {result.gain_over('cmap', 'cs_on'):.2f}x"
        )
    if result.cmap_concurrency:
        s = summarize(result.cmap_concurrency)
        lines.append(
            f"CMAP concurrency fraction: mean {s.mean:.2f}, median {s.median:.2f}"
        )
    return "\n".join(lines)


def render_hidden_interferer(result: HiddenInterfererResult) -> str:
    lines = [
        "hidden interferers (paper §5.4, Fig. 14)",
        f"  points: {len(result.points)}",
        f"  bottom-left quadrant fraction: {result.bottom_left_fraction:.3f}"
        "  (paper: 0.08)",
        f"  expected CMAP normalized throughput: "
        f"{result.expected_cmap_throughput:.3f}  (paper: 0.896)",
    ]
    return "\n".join(lines)


def render_ap(result: ApResult) -> str:
    lines = ["AP topology aggregate throughput (paper Fig. 17)"]
    protocols = list(next(iter(result.aggregate.values())).keys())
    header = "  N " + "".join(f"{p:>10}" for p in protocols) + "   cmap/cs_on"
    lines.append(header)
    for n in sorted(result.aggregate):
        row = f"  {n:<2} "
        means = {}
        for p in protocols:
            vals = result.aggregate[n][p]
            means[p] = sum(vals) / len(vals) if vals else 0.0
            row += f"{means[p]:>10.2f}"
        gain = means.get("cmap", 0) / means["cs_on"] if means.get("cs_on") else 0
        row += f"{gain:>12.2f}x"
        lines.append(row)
    lines.append("")
    lines.append("per-sender throughput CDF (paper Fig. 18; median 2.5 vs 4.6)")
    lines.append(_cdf_table(result.per_sender))
    return "\n".join(lines)


def render_ht_cdf(result: HeaderTrailerCdfResult) -> str:
    curves = {
        "in-range, header": result.inrange_header,
        "in-range, either": result.inrange_either,
        "out-of-range, header": result.outofrange_header,
        "out-of-range, either": result.outofrange_either,
    }
    curves = {k: v for k, v in curves.items() if v}
    return "header/trailer reception (paper Fig. 16)\n" + _cdf_table(
        curves, unit="reception rate"
    )


def render_ht_density(result: HtDensityResult) -> str:
    lines = [
        "header-or-trailer reception vs concurrent senders (paper Fig. 19)",
        "  N     mean   median      p10      p25      p75      p90",
    ]
    for n in sorted(result.rates_by_n):
        vals = result.rates_by_n[n]
        if not vals:
            continue
        s = summarize(vals)
        lines.append(
            f"  {n:<3}{s.mean:>8.2f}{s.median:>9.2f}{s.p10:>9.2f}"
            f"{s.p25:>9.2f}{s.p75:>9.2f}{s.p90:>9.2f}"
        )
    return "\n".join(lines)


def render_mesh(result: MeshResult) -> str:
    lines = ["two-hop mesh dissemination (paper §5.7: CMAP +52 % over CS)"]
    for name, vals in result.aggregate.items():
        mean = sum(vals) / len(vals) if vals else 0.0
        lines.append(f"  {name:<8} mean aggregate {mean:.2f} Mb/s over {len(vals)} topologies")
    lines.append(f"  gain: {result.gain():.2f}x")
    return "\n".join(lines)


def _sweep_table(
    axis_label: str, axis_values, totals, title: str, unit: str
) -> str:
    protocols = list(next(iter(totals.values())).keys()) if totals else []
    lines = [title]
    header = f"  {axis_label:<10}" + "".join(f"{p:>10}" for p in protocols)
    if "cmap" in protocols and "cs_on" in protocols:
        header += "   cmap/cs_on"
    lines.append(header + f"   (median {unit})")
    for v in axis_values:
        medians = {}
        row = f"  {v:<10}"
        for p in protocols:
            medians[p] = sample_median(totals[v][p])
            row += f"{medians[p]:>10.2f}"
        if "cmap" in medians and "cs_on" in medians:
            gain = medians["cmap"] / medians["cs_on"] if medians["cs_on"] else 0.0
            row += f"{gain:>12.2f}x"
        lines.append(row)
    return "\n".join(lines)


def render_mobility(result: MobilitySweepResult) -> str:
    return _sweep_table(
        "m/s",
        result.speeds,
        result.totals,
        "mobility sweep — total two-pair throughput vs walk speed "
        "(dynamic world; 0 = static control)",
        "Mb/s",
    )


def render_churn(result: ChurnSweepResult) -> str:
    return _sweep_table(
        "period s",
        result.periods,
        result.totals,
        "churn sweep — aggregate throughput vs sender join/leave period "
        "(dynamic world; 0 = static control)",
        "Mb/s",
    )


def render_scale(result: ScaleSweepResult) -> str:
    """The scale sweep: generated worlds under RSS-cutoff culling.

    The fan-out column is the culling headline: mean receivers per frame
    (full + interference-only entries) against the exhaustive N-1 every
    transmission used to pay.
    """
    protocols: list = []
    for c in result.cases:
        for name in c.totals:
            if name not in protocols:
                protocols.append(name)
    with_gain = "cmap" in protocols and "cs_on" in protocols
    header = f"  {'topology':<14}{'N':>5}{'flows':>7}"
    header += "".join(f"{p:>9}" for p in protocols)
    if with_gain:
        header += f"{'gain':>7}"
    lines = [
        "scale sweep — generated worlds, neighborhood-culled fan-out",
        header + "   fan-out (rx+noise / N-1)",
    ]
    for c in result.cases:
        medians = {p: c.median(p) for p in protocols if p in c.totals}
        row = f"  {c.topology:<14}{c.n:>5}{c.flows:>7}"
        row += "".join(f"{medians.get(p, 0.0):>9.2f}" for p in protocols)
        if with_gain:
            cs = medians.get("cs_on", 0.0)
            gain = f"{medians.get('cmap', 0.0) / cs:.2f}x" if cs > 0 else "-"
            row += f"{gain:>7}"
        if c.fanout:
            fo = (
                f"{c.fanout['mean_delivered']:.1f}+"
                f"{c.fanout['mean_interference_only']:.1f} / {c.n - 1}"
            )
        else:
            fo = "-"
        lines.append(row + f"   {fo}")
    return "\n".join(lines)


def render_bitrate_sweep(result: BitrateSweepResult) -> str:
    lines = ["exposed terminals at multiple bit-rates (paper Fig. 20)"]
    for mbps in sorted(result.by_rate):
        sub = result.by_rate[mbps]
        lines.append(f"-- {mbps} Mb/s --")
        lines.append(_cdf_table(sub.totals))
        lines.append(
            f"median gain CMAP / CS-on: {sub.gain_over('cmap', 'cs_on'):.2f}x"
        )
    return "\n".join(lines)
