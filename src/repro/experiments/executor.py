"""Generic experiment executor: materialize TrialSpecs through a backend.

``run_experiment(spec, testbed)`` is the single entry point every figure
runner goes through. It materializes each :class:`~repro.experiments.spec.
TrialSpec` into a :class:`~repro.network.Network` run, collects
:class:`~repro.experiments.spec.TrialResult`s, and applies the spec's pure
reduction. Backends plug in how trials execute:

* :class:`SerialBackend` — in-process, in spec order. Bit-identical to the
  pre-spec hand-rolled runners (every RNG stream is a stateless function of
  (testbed seed, run seed), so execution order cannot perturb results).
* :class:`ProcessPoolBackend` — multiprocessing fan-out. Trials share
  nothing but the read-only testbed (shipped once per worker), so this is
  an embarrassingly parallel map with deterministic output.

:class:`ResultStore` adds JSON persistence: completed trials are saved under
(trial_id, fingerprint) and skipped on resume.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import TrialHungError, WorkerCrashError
from repro.experiments.spec import ExperimentSpec, TrialResult, TrialSpec
from repro.net.testbed import Testbed
from repro.network import Network, RunResult


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
#: metric name -> fn(net, result, spec) -> JSON-serializable value.
#: Metrics run inside the executing worker, right after the simulation,
#: because they need live MAC/medium state that never leaves the process.
METRICS: Dict[str, Callable[[Network, RunResult, TrialSpec], Any]] = {}


def register_metric(name: str):
    def deco(fn):
        METRICS[name] = fn
        return fn

    return deco


@register_metric("concurrency")
def _metric_concurrency(net: Network, result: RunResult, spec: TrialSpec) -> float:
    """Fraction of measured time with >= 2 senders on the air (needs
    ``track_tx``)."""
    return result.concurrency_fraction(spec.senders)


@register_metric("ht_rates")
def _metric_ht_rates(net: Network, result: RunResult, spec: TrialSpec) -> List[float]:
    """Per-receiver P(header or trailer) for each measured CMAP flow."""
    rates = []
    for s, r in spec.measured_flows:
        smac = net.nodes[s].mac
        rmac = net.nodes[r].mac
        sent = smac.cstats.vpkts_sent_to.get(r, 0)
        if sent > 0:
            rates.append(rmac.header_or_trailer_rate(s, sent))
    return rates


@register_metric("fanout")
def _metric_fanout(net: Network, result: RunResult, spec: TrialSpec) -> Dict[str, float]:
    """Mean fan-out table sizes vs the exhaustive N-1 (culling diagnostics)."""
    census = net.medium.fanout_census()
    attached = len(net.medium.attached_ids())
    if not census:
        return {"tables": 0, "attached": attached,
                "mean_delivered": 0.0, "mean_interference_only": 0.0}
    delivered = [d for d, _ in census.values()]
    noise_only = [i for _, i in census.values()]
    n = len(census)
    return {
        "tables": n,
        "attached": attached,
        "mean_delivered": sum(delivered) / n,
        "mean_interference_only": sum(noise_only) / n,
    }


@register_metric("ht_stats")
def _metric_ht_stats(net: Network, result: RunResult, spec: TrialSpec) -> List[List[float]]:
    """Per-flow [P(header), P(header or trailer)] pairs (Fig. 16)."""
    out = []
    for s, r in spec.measured_flows:
        smac = net.nodes[s].mac
        rmac = net.nodes[r].mac
        sent = smac.cstats.vpkts_sent_to.get(r, 0)
        if sent > 0:
            out.append([rmac.header_rate(s, sent),
                        rmac.header_or_trailer_rate(s, sent)])
    return out


# ----------------------------------------------------------------------
# Trial materialization
# ----------------------------------------------------------------------
def _join_node(net: Network, node: int, factory, flows, payload_bytes: int) -> None:
    """Churn join: (re)instantiate a node mid-run with its flows."""
    if node in net.nodes:
        return  # already present (overlapping schedules compose as no-ops)
    net.add_node(node, factory)
    for s, d in flows:
        net.add_saturated_flow(s, d, payload_bytes=payload_bytes)


def _leave_node(net: Network, node: int) -> None:
    """Churn leave: stop and detach a node mid-run."""
    if node in net.nodes:
        net.remove_node(node)


def run_trial(
    testbed: Testbed,
    spec: TrialSpec,
    timeout_s: Optional[float] = None,
    fault_hook=None,
) -> TrialResult:
    """Assemble, run, and measure one trial. Pure in (testbed, spec).

    Dynamic-world extensions: ``spec.churn`` events are scheduled before the
    run (a node whose first event is "join" starts absent and brings its
    flows along when it enters); ``spec.mobility`` builds the registered
    model over the testbed floor and plays it through a
    :class:`~repro.net.mobility.MobilityController`. Both are deterministic
    functions of (testbed, spec), so backends stay interchangeable.

    ``timeout_s`` arms a cooperative wall-clock watchdog: a self-
    rescheduling engine event checks elapsed wall time every 1/64th of the
    trial's simulated duration and raises
    :class:`~repro.errors.TrialHungError` once the budget is spent — a
    hung trial becomes a quarantinable failure instead of a wedged worker.
    The check events mutate no simulation state (RNG streams are stateless
    functions of the seeds, and the callback only reads the wall clock),
    so results stay bit-identical with the watchdog armed; when
    ``timeout_s`` is None the engine's hot loop is untouched.

    ``fault_hook`` (see ``repro.service.faults``) fires site ``trial.run``
    keyed by the trial id before the run — the injection point for
    scripted per-trial raise/hang/kill faults.
    """
    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    if fault_hook is not None:
        fault_hook("trial.run", spec.trial_id)
    net = Network(
        testbed,
        run_seed=spec.run_seed,
        track_tx=spec.track_tx,
        delivery_floor_dbm=spec.delivery_floor_dbm,
        interference_floor_dbm=spec.interference_floor_dbm,
    )
    factory = spec.mac.build()
    first_op: Dict[int, str] = {}
    for t, op, node in sorted(spec.churn, key=lambda e: e[0]):
        if op not in ("join", "leave"):
            raise ValueError(f"unknown churn op {op!r} (want 'join'/'leave')")
        first_op.setdefault(node, op)
    initially_absent = {n for n, op in first_op.items() if op == "join"}
    for node in spec.nodes:
        if node not in initially_absent:
            net.add_node(node, factory)
    for s, d in spec.flows:
        if s not in initially_absent:
            net.add_saturated_flow(s, d, payload_bytes=spec.payload_bytes)
    for t, op, node in spec.churn:
        if op == "join":
            flows = tuple(f for f in spec.flows if f[0] == node)
            net.sim.schedule(
                t, _join_node, net, node, factory, flows, spec.payload_bytes
            )
        else:
            net.sim.schedule(t, _leave_node, net, node)
    if spec.mobility is not None:
        from repro.net.mobility import MobilityController

        controller = MobilityController(net)
        model = spec.mobility.build(testbed.config.floor)
        for node in spec.mobility.nodes:
            controller.attach(node, model)
        controller.start()
    if deadline is not None:
        check_dt = max(spec.duration / 64.0, 1e-6)

        def _watchdog_check() -> None:
            if time.monotonic() >= deadline:
                raise TrialHungError(
                    f"trial {spec.trial_id!r} exceeded its {timeout_s}s "
                    f"wall-clock budget at sim time {net.sim.now:.6f}"
                )
            net.sim.schedule_call(check_dt, _watchdog_check)

        net.sim.schedule_call(check_dt, _watchdog_check)
    result = net.run(duration=spec.duration, warmup=spec.warmup)
    flow_mbps = {f: result.flow_mbps(*f) for f in spec.measured_flows}
    metrics = {}
    for name in spec.metrics:
        if name not in METRICS:
            raise KeyError(f"unknown metric {name!r}; registered: "
                           f"{sorted(METRICS)}")
        metrics[name] = METRICS[name](net, result, spec)
    return TrialResult(spec.trial_id, flow_mbps, metrics, spec.fingerprint())


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class SerialBackend:
    """Run trials one after another in the calling process.

    Backend protocol: ``run(testbed, trials, on_result=None, on_error=None)``
    returns the successful results in ``trials`` order; ``on_result`` is
    invoked with each result as soon as it exists, which is what lets the
    executor persist completed trials while the rest of a figure is still
    running. Without ``on_error`` a failing trial raises (the historical
    contract run_experiment relies on); with it, the exception is reported
    as ``on_error(trial, exc)`` and the remaining trials still run.
    """

    def __init__(
        self,
        trial_timeout_s: Optional[float] = None,
        fault_hook=None,
    ):
        self.trial_timeout_s = trial_timeout_s
        self.fault_hook = fault_hook

    def run(
        self,
        testbed: Testbed,
        trials: Sequence[TrialSpec],
        on_result=None,
        on_error=None,
    ) -> List[TrialResult]:
        results = []
        for t in trials:
            try:
                res = run_trial(
                    testbed, t,
                    timeout_s=self.trial_timeout_s,
                    fault_hook=self.fault_hook,
                )
            except Exception as exc:
                if on_error is None:
                    raise
                on_error(t, exc)
                continue
            if on_result is not None:
                on_result(res)
            results.append(res)
        return results


_WORKER_TESTBED: Optional[Testbed] = None
_WORKER_FAULTS = None
_WORKER_TIMEOUT: Optional[float] = None


def _pool_init(testbed: Testbed, fault_wire=None, timeout_s=None) -> None:
    global _WORKER_TESTBED, _WORKER_FAULTS, _WORKER_TIMEOUT
    _die_with_parent()
    _WORKER_TESTBED = testbed
    _WORKER_TIMEOUT = timeout_s
    if fault_wire is not None:
        # Lazy import: the executor layer sits below the service package
        # and must not depend on it unless a fault plan actually ships.
        from repro.service.faults import FaultPlan

        _WORKER_FAULTS = FaultPlan.from_wire(fault_wire)


def _die_with_parent() -> None:
    """Confine this worker to its parent's fault domain.

    Forked workers inherit the parent's Python signal handlers — in a
    ``cli serve`` process that includes the graceful-drain SIGTERM
    handler, which must not run in a worker (it would swallow SIGTERM
    and make the worker unkillable by ``terminate()``). SIGTERM goes
    back to SIG_DFL; SIGINT to SIG_IGN so a terminal Ctrl-C drains via
    the parent at the trial boundary instead of snapping workers
    mid-trial into a BrokenProcessPool.

    Then ask the kernel to SIGTERM the worker if its parent dies (Linux
    ``PR_SET_PDEATHSIG``; silently a no-op elsewhere). Without it, a
    coordinator killed outright (OOM, ``kill -9``, an injected crash)
    orphans its workers: forked children hold the write end of their own
    call queue — so they block on ``get()`` forever instead of seeing
    EOF — plus every other inherited fd, including a serve process's
    HTTP listen socket, which then keeps the port bound against the
    restarted server."""
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGTERM)
    except (OSError, AttributeError):  # non-Linux / no prctl
        pass


def _pool_run(spec: TrialSpec) -> TrialResult:
    assert _WORKER_TESTBED is not None, "worker pool not initialized"
    hook = None if _WORKER_FAULTS is None else _WORKER_FAULTS.fire
    if hook is not None:
        # ``kill`` rules here die via os._exit mid-chunk — the scripted
        # stand-in for an OOM-killed worker (-> BrokenProcessPool upstream).
        hook("pool.worker", spec.trial_id)
    return run_trial(
        _WORKER_TESTBED, spec, timeout_s=_WORKER_TIMEOUT, fault_hook=hook
    )


class ProcessPoolBackend:
    """Fan trials out over a process pool, surviving dead workers.

    The testbed is shipped to each worker once (pool initializer); trial
    specs stream over the pipe per task. Output order follows input order,
    and every trial is a pure function of (testbed, spec), so results are
    bit-identical to :class:`SerialBackend`.

    Failure domains (see DESIGN.md "Failure domains"):

    * A worker that dies mid-chunk breaks the whole
      :class:`~concurrent.futures.ProcessPoolExecutor`
      (:class:`BrokenProcessPool`). The chunk's unfinished trials are
      requeued **once** into a freshly spawned pool; a second broken pool
      marks the survivors with :class:`~repro.errors.WorkerCrashError` —
      the caller quarantines them rather than risk running a
      worker-killing trial in-process.
    * ``trial_timeout_s`` arms the in-worker cooperative watchdog *and* an
      external chunk deadline (a generous multiple, for hangs the
      cooperative check cannot see). An externally timed-out trial gets
      :class:`~repro.errors.TrialHungError`; its pool is torn down (hung
      workers are terminated) and the remaining trials are resubmitted.
    * Without ``on_error`` the first trial failure raises after the rest
      of the chunk finishes — the historical contract, which keeps
      ``run_experiment``'s flush-on-failure guarantee intact.
    """

    #: Broken-pool rounds before the survivors are written off.
    MAX_CRASH_ROUNDS = 2

    def __init__(
        self,
        jobs: Optional[int] = None,
        start_method: Optional[str] = None,
        trial_timeout_s: Optional[float] = None,
        fault_plan=None,
    ):
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method
        self.trial_timeout_s = trial_timeout_s
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    def run(
        self,
        testbed: Testbed,
        trials: Sequence[TrialSpec],
        on_result=None,
        on_error=None,
    ) -> List[TrialResult]:
        trials = list(trials)
        if not trials or self.jobs <= 1:
            hook = None if self.fault_plan is None else self.fault_plan.fire
            return SerialBackend(
                trial_timeout_s=self.trial_timeout_s, fault_hook=hook
            ).run(testbed, trials, on_result=on_result, on_error=on_error)

        results: Dict[str, TrialResult] = {}
        failures: List["tuple[TrialSpec, BaseException]"] = []
        failed_ids: set = set()
        crash_rounds = 0
        remaining = trials
        backstop = None
        if self.trial_timeout_s is not None:
            # The cooperative in-worker watchdog fires at trial_timeout_s;
            # the external deadline is a backstop for non-cooperative hangs
            # and must not race the cooperative one on a loaded box.
            backstop = self.trial_timeout_s * 2.0 + 1.0

        while remaining:
            executor = self._spawn(testbed, len(remaining))
            futures = [(executor.submit(_pool_run, t), t) for t in remaining]
            broken = hung = False
            try:
                for future, trial in futures:
                    if trial.trial_id in failed_ids:
                        continue
                    try:
                        res = future.result(timeout=backstop)
                    except BrokenProcessPool:
                        broken = True
                        break
                    except FutureTimeout:
                        failures.append((trial, TrialHungError(
                            f"trial {trial.trial_id!r} exceeded the external "
                            f"{backstop}s chunk deadline"
                        )))
                        failed_ids.add(trial.trial_id)
                        hung = True
                        break
                    except Exception as exc:
                        failures.append((trial, exc))
                        failed_ids.add(trial.trial_id)
                    else:
                        results[res.trial_id] = res
                        if on_result is not None:
                            on_result(res)
            finally:
                self._teardown(executor, force=broken or hung)

            remaining = [
                t for t in remaining
                if t.trial_id not in results and t.trial_id not in failed_ids
            ]
            if broken:
                crash_rounds += 1
                if crash_rounds >= self.MAX_CRASH_ROUNDS and remaining:
                    for t in remaining:
                        failures.append((t, WorkerCrashError(
                            f"trial {t.trial_id!r} was in a chunk that broke "
                            f"its worker pool {crash_rounds} times"
                        )))
                        failed_ids.add(t.trial_id)
                    remaining = []

        for trial, exc in failures:
            if on_error is None:
                raise exc
            on_error(trial, exc)
        return [results[t.trial_id] for t in trials if t.trial_id in results]

    # ------------------------------------------------------------------
    def _spawn(self, testbed: Testbed, n_tasks: int) -> ProcessPoolExecutor:
        ctx = multiprocessing.get_context(self.start_method)
        wire = None if self.fault_plan is None else self.fault_plan.to_wire()
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, n_tasks),
            mp_context=ctx,
            initializer=_pool_init,
            initargs=(testbed, wire, self.trial_timeout_s),
        )

    @staticmethod
    def _teardown(executor: ProcessPoolExecutor, force: bool) -> None:
        """Shut a pool down; with ``force``, terminate its workers first —
        a hung worker would otherwise block ``shutdown`` forever, and a
        broken pool's survivors are being resubmitted elsewhere anyway."""
        if force:
            for proc in list(getattr(executor, "_processes", {}).values()):
                if proc.is_alive():
                    proc.terminate()
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown(wait=True)


def make_backend(
    jobs: Optional[int],
    trial_timeout_s: Optional[float] = None,
    fault_plan=None,
) -> "SerialBackend | ProcessPoolBackend":
    """``jobs`` <= 1 (or None) -> serial; otherwise an N-process pool.
    ``trial_timeout_s``/``fault_plan`` thread the watchdog and fault hooks
    into whichever backend comes back."""
    if jobs is None or jobs <= 1:
        hook = None if fault_plan is None else fault_plan.fire
        return SerialBackend(trial_timeout_s=trial_timeout_s, fault_hook=hook)
    return ProcessPoolBackend(
        jobs, trial_timeout_s=trial_timeout_s, fault_plan=fault_plan
    )


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class ResultStore:
    """JSON persistence of trial results, keyed by (trial_id, fingerprint).

    A store is bound to one testbed seed; resuming against a different
    testbed raises rather than silently mixing incompatible results. Writes
    are atomic (temp file + rename) so an interrupted sweep never corrupts
    earlier results.

    ``experiment`` names the sweep the results belong to and is persisted
    in the file — it is what lets a corrupted run-table be rebuilt from
    the flat stores alone (``RunTable.rebuild_from_stores``), without the
    jobs table that died with it. ``fault_hook`` fires site ``store.save``
    (keyed by path) at the top of every save, before anything touches
    disk — an injected ``OSError`` there behaves exactly like a failed
    write: the previous on-disk contents stay intact.
    """

    def __init__(
        self,
        path: str,
        testbed_seed: Optional[int] = None,
        experiment: Optional[str] = None,
        fault_hook=None,
    ):
        self.path = path
        self.testbed_seed = testbed_seed
        self.experiment = experiment
        self.fault_hook = fault_hook
        self._results: Dict[str, TrialResult] = {}
        if os.path.exists(path):
            self._load()

    def _load(self) -> None:
        with open(self.path) as f:
            obj = json.load(f)
        stored_seed = obj.get("testbed_seed")
        if (self.testbed_seed is not None and stored_seed is not None
                and stored_seed != self.testbed_seed):
            raise ValueError(
                f"result store {self.path} was produced with testbed seed "
                f"{stored_seed}, not {self.testbed_seed}"
            )
        if stored_seed is not None:
            self.testbed_seed = stored_seed
        if obj.get("experiment") is not None:
            self.experiment = obj["experiment"]
        for entry in obj.get("trials", []):
            res = TrialResult.from_json(entry)
            self._results[res.trial_id] = res

    def get(self, spec: TrialSpec) -> Optional[TrialResult]:
        cached = self._results.get(spec.trial_id)
        if cached is not None and cached.fingerprint == spec.fingerprint():
            return cached
        return None

    def put(self, result: TrialResult) -> None:
        self._results[result.trial_id] = result

    def has(self, trial_id: str, fingerprint: str) -> bool:
        """Whether a result with exactly this (trial_id, fingerprint) is
        cached — the idempotency check remote result uploads go through."""
        cached = self._results.get(trial_id)
        return cached is not None and cached.fingerprint == fingerprint

    def __len__(self) -> int:
        return len(self._results)

    def results(self) -> List[TrialResult]:
        """All cached results, in insertion order."""
        return list(self._results.values())

    def migrate_to(self, runtable, experiment: str, **row_kwargs) -> int:
        """Copy every cached result into a run-table (duck-typed: anything
        with ``record_trial(experiment, result, **kwargs)``, i.e.
        :class:`repro.service.runtable.RunTable`). Returns the row count.

        This is the flat-file -> sqlite migration path: the JSON store stays
        the executor's resume source of truth, the run-table takes over
        querying (counts, percentiles, recent runs) without re-parsing files.
        """
        seed = row_kwargs.pop("seed", self.testbed_seed)
        for result in self._results.values():
            runtable.record_trial(experiment, result, seed=seed, **row_kwargs)
        return len(self._results)

    def save(self) -> None:
        """Atomically persist the store: a mid-save crash (including power
        loss, which ``os.replace`` alone does not cover) leaves the previous
        on-disk contents intact — the coordinator's crash-resume path reads
        this file, so a truncated store would silently re-run or, worse,
        half-resume a sweep."""
        if self.fault_hook is not None:
            self.fault_hook("store.save", self.path)
        payload = {
            "testbed_seed": self.testbed_seed,
            "trials": [r.to_json() for r in self._results.values()],
        }
        if self.experiment is not None:
            payload["experiment"] = self.experiment
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_experiment(
    spec: ExperimentSpec,
    testbed: Testbed,
    backend: Optional[object] = None,
    store: Optional[ResultStore] = None,
) -> Any:
    """Execute ``spec``'s trials through ``backend`` and reduce the results.

    With a ``store``, trials whose (id, fingerprint) already exist are
    skipped and their cached results reused; fresh results are persisted
    one by one as they complete, so an interrupted run resumes from the
    last finished trial rather than the last finished figure.
    """
    backend = backend or SerialBackend()
    if store is not None:
        # Bind the store to the testbed actually being executed against —
        # cached trial results are meaningless under any other testbed.
        actual_seed = getattr(testbed, "seed", None)
        if store.testbed_seed is None:
            store.testbed_seed = actual_seed
        elif actual_seed is not None and store.testbed_seed != actual_seed:
            raise ValueError(
                f"result store {store.path} holds trials for testbed seed "
                f"{store.testbed_seed}, but this run uses seed {actual_seed}"
            )
    cached: Dict[str, TrialResult] = {}
    pending: List[TrialSpec] = []
    for trial in spec.trials:
        hit = store.get(trial) if store is not None else None
        if hit is not None:
            cached[trial.trial_id] = hit
        else:
            pending.append(trial)
    on_result = None
    if store is not None:
        def on_result(res: TrialResult) -> None:
            store.put(res)
            store.save()
    try:
        fresh = backend.run(testbed, pending, on_result=on_result) if pending else []
    except BaseException:
        # A worker failure (or interrupt) mid-sweep must not lose the trials
        # that already completed: flush whatever reached the store before
        # letting the error propagate. Backends that call ``on_result`` per
        # trial have already persisted those results; this covers backends
        # (or monkeypatched stand-ins) that only ``put`` into the store, and
        # makes the guarantee independent of backend cooperation.
        if store is not None:
            store.save()
        raise
    by_id = dict(cached)
    by_id.update({r.trial_id: r for r in fresh})
    ordered = [by_id[t.trial_id] for t in spec.trials]
    return spec.reduce(ordered)
