"""Generic experiment executor: materialize TrialSpecs through a backend.

``run_experiment(spec, testbed)`` is the single entry point every figure
runner goes through. It materializes each :class:`~repro.experiments.spec.
TrialSpec` into a :class:`~repro.network.Network` run, collects
:class:`~repro.experiments.spec.TrialResult`s, and applies the spec's pure
reduction. Backends plug in how trials execute:

* :class:`SerialBackend` — in-process, in spec order. Bit-identical to the
  pre-spec hand-rolled runners (every RNG stream is a stateless function of
  (testbed seed, run seed), so execution order cannot perturb results).
* :class:`ProcessPoolBackend` — multiprocessing fan-out. Trials share
  nothing but the read-only testbed (shipped once per worker), so this is
  an embarrassingly parallel map with deterministic output.

:class:`ResultStore` adds JSON persistence: completed trials are saved under
(trial_id, fingerprint) and skipped on resume.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.spec import ExperimentSpec, TrialResult, TrialSpec
from repro.net.testbed import Testbed
from repro.network import Network, RunResult


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
#: metric name -> fn(net, result, spec) -> JSON-serializable value.
#: Metrics run inside the executing worker, right after the simulation,
#: because they need live MAC/medium state that never leaves the process.
METRICS: Dict[str, Callable[[Network, RunResult, TrialSpec], Any]] = {}


def register_metric(name: str):
    def deco(fn):
        METRICS[name] = fn
        return fn

    return deco


@register_metric("concurrency")
def _metric_concurrency(net: Network, result: RunResult, spec: TrialSpec) -> float:
    """Fraction of measured time with >= 2 senders on the air (needs
    ``track_tx``)."""
    return result.concurrency_fraction(spec.senders)


@register_metric("ht_rates")
def _metric_ht_rates(net: Network, result: RunResult, spec: TrialSpec) -> List[float]:
    """Per-receiver P(header or trailer) for each measured CMAP flow."""
    rates = []
    for s, r in spec.measured_flows:
        smac = net.nodes[s].mac
        rmac = net.nodes[r].mac
        sent = smac.cstats.vpkts_sent_to.get(r, 0)
        if sent > 0:
            rates.append(rmac.header_or_trailer_rate(s, sent))
    return rates


@register_metric("fanout")
def _metric_fanout(net: Network, result: RunResult, spec: TrialSpec) -> Dict[str, float]:
    """Mean fan-out table sizes vs the exhaustive N-1 (culling diagnostics)."""
    census = net.medium.fanout_census()
    attached = len(net.medium.attached_ids())
    if not census:
        return {"tables": 0, "attached": attached,
                "mean_delivered": 0.0, "mean_interference_only": 0.0}
    delivered = [d for d, _ in census.values()]
    noise_only = [i for _, i in census.values()]
    n = len(census)
    return {
        "tables": n,
        "attached": attached,
        "mean_delivered": sum(delivered) / n,
        "mean_interference_only": sum(noise_only) / n,
    }


@register_metric("ht_stats")
def _metric_ht_stats(net: Network, result: RunResult, spec: TrialSpec) -> List[List[float]]:
    """Per-flow [P(header), P(header or trailer)] pairs (Fig. 16)."""
    out = []
    for s, r in spec.measured_flows:
        smac = net.nodes[s].mac
        rmac = net.nodes[r].mac
        sent = smac.cstats.vpkts_sent_to.get(r, 0)
        if sent > 0:
            out.append([rmac.header_rate(s, sent),
                        rmac.header_or_trailer_rate(s, sent)])
    return out


# ----------------------------------------------------------------------
# Trial materialization
# ----------------------------------------------------------------------
def _join_node(net: Network, node: int, factory, flows, payload_bytes: int) -> None:
    """Churn join: (re)instantiate a node mid-run with its flows."""
    if node in net.nodes:
        return  # already present (overlapping schedules compose as no-ops)
    net.add_node(node, factory)
    for s, d in flows:
        net.add_saturated_flow(s, d, payload_bytes=payload_bytes)


def _leave_node(net: Network, node: int) -> None:
    """Churn leave: stop and detach a node mid-run."""
    if node in net.nodes:
        net.remove_node(node)


def run_trial(testbed: Testbed, spec: TrialSpec) -> TrialResult:
    """Assemble, run, and measure one trial. Pure in (testbed, spec).

    Dynamic-world extensions: ``spec.churn`` events are scheduled before the
    run (a node whose first event is "join" starts absent and brings its
    flows along when it enters); ``spec.mobility`` builds the registered
    model over the testbed floor and plays it through a
    :class:`~repro.net.mobility.MobilityController`. Both are deterministic
    functions of (testbed, spec), so backends stay interchangeable.
    """
    net = Network(
        testbed,
        run_seed=spec.run_seed,
        track_tx=spec.track_tx,
        delivery_floor_dbm=spec.delivery_floor_dbm,
        interference_floor_dbm=spec.interference_floor_dbm,
    )
    factory = spec.mac.build()
    first_op: Dict[int, str] = {}
    for t, op, node in sorted(spec.churn, key=lambda e: e[0]):
        if op not in ("join", "leave"):
            raise ValueError(f"unknown churn op {op!r} (want 'join'/'leave')")
        first_op.setdefault(node, op)
    initially_absent = {n for n, op in first_op.items() if op == "join"}
    for node in spec.nodes:
        if node not in initially_absent:
            net.add_node(node, factory)
    for s, d in spec.flows:
        if s not in initially_absent:
            net.add_saturated_flow(s, d, payload_bytes=spec.payload_bytes)
    for t, op, node in spec.churn:
        if op == "join":
            flows = tuple(f for f in spec.flows if f[0] == node)
            net.sim.schedule(
                t, _join_node, net, node, factory, flows, spec.payload_bytes
            )
        else:
            net.sim.schedule(t, _leave_node, net, node)
    if spec.mobility is not None:
        from repro.net.mobility import MobilityController

        controller = MobilityController(net)
        model = spec.mobility.build(testbed.config.floor)
        for node in spec.mobility.nodes:
            controller.attach(node, model)
        controller.start()
    result = net.run(duration=spec.duration, warmup=spec.warmup)
    flow_mbps = {f: result.flow_mbps(*f) for f in spec.measured_flows}
    metrics = {}
    for name in spec.metrics:
        if name not in METRICS:
            raise KeyError(f"unknown metric {name!r}; registered: "
                           f"{sorted(METRICS)}")
        metrics[name] = METRICS[name](net, result, spec)
    return TrialResult(spec.trial_id, flow_mbps, metrics, spec.fingerprint())


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class SerialBackend:
    """Run trials one after another in the calling process.

    Backend protocol: ``run(testbed, trials, on_result=None)`` returns the
    results in ``trials`` order; ``on_result`` is invoked with each result
    as soon as it exists, which is what lets the executor persist completed
    trials while the rest of a figure is still running.
    """

    def run(
        self,
        testbed: Testbed,
        trials: Sequence[TrialSpec],
        on_result=None,
    ) -> List[TrialResult]:
        results = []
        for t in trials:
            res = run_trial(testbed, t)
            if on_result is not None:
                on_result(res)
            results.append(res)
        return results


_WORKER_TESTBED: Optional[Testbed] = None


def _pool_init(testbed: Testbed) -> None:
    global _WORKER_TESTBED
    _WORKER_TESTBED = testbed


def _pool_run(spec: TrialSpec) -> TrialResult:
    assert _WORKER_TESTBED is not None, "worker pool not initialized"
    return run_trial(_WORKER_TESTBED, spec)


class ProcessPoolBackend:
    """Fan trials out over a multiprocessing pool.

    The testbed is shipped to each worker once (pool initializer); trial
    specs stream over the pipe per task. Output order follows input order,
    and every trial is a pure function of (testbed, spec), so results are
    bit-identical to :class:`SerialBackend`.
    """

    def __init__(self, jobs: Optional[int] = None, start_method: Optional[str] = None):
        self.jobs = jobs or os.cpu_count() or 1
        self.start_method = start_method

    def run(
        self,
        testbed: Testbed,
        trials: Sequence[TrialSpec],
        on_result=None,
    ) -> List[TrialResult]:
        trials = list(trials)
        if not trials or self.jobs <= 1:
            return SerialBackend().run(testbed, trials, on_result=on_result)
        ctx = multiprocessing.get_context(self.start_method)
        results = []
        with ctx.Pool(
            processes=min(self.jobs, len(trials)),
            initializer=_pool_init,
            initargs=(testbed,),
        ) as pool:
            for res in pool.imap(_pool_run, trials, chunksize=1):
                if on_result is not None:
                    on_result(res)
                results.append(res)
        return results


def make_backend(jobs: Optional[int]) -> "SerialBackend | ProcessPoolBackend":
    """``jobs`` <= 1 (or None) -> serial; otherwise an N-process pool."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class ResultStore:
    """JSON persistence of trial results, keyed by (trial_id, fingerprint).

    A store is bound to one testbed seed; resuming against a different
    testbed raises rather than silently mixing incompatible results. Writes
    are atomic (temp file + rename) so an interrupted sweep never corrupts
    earlier results.
    """

    def __init__(self, path: str, testbed_seed: Optional[int] = None):
        self.path = path
        self.testbed_seed = testbed_seed
        self._results: Dict[str, TrialResult] = {}
        if os.path.exists(path):
            self._load()

    def _load(self) -> None:
        with open(self.path) as f:
            obj = json.load(f)
        stored_seed = obj.get("testbed_seed")
        if (self.testbed_seed is not None and stored_seed is not None
                and stored_seed != self.testbed_seed):
            raise ValueError(
                f"result store {self.path} was produced with testbed seed "
                f"{stored_seed}, not {self.testbed_seed}"
            )
        if stored_seed is not None:
            self.testbed_seed = stored_seed
        for entry in obj.get("trials", []):
            res = TrialResult.from_json(entry)
            self._results[res.trial_id] = res

    def get(self, spec: TrialSpec) -> Optional[TrialResult]:
        cached = self._results.get(spec.trial_id)
        if cached is not None and cached.fingerprint == spec.fingerprint():
            return cached
        return None

    def put(self, result: TrialResult) -> None:
        self._results[result.trial_id] = result

    def __len__(self) -> int:
        return len(self._results)

    def results(self) -> List[TrialResult]:
        """All cached results, in insertion order."""
        return list(self._results.values())

    def migrate_to(self, runtable, experiment: str, **row_kwargs) -> int:
        """Copy every cached result into a run-table (duck-typed: anything
        with ``record_trial(experiment, result, **kwargs)``, i.e.
        :class:`repro.service.runtable.RunTable`). Returns the row count.

        This is the flat-file -> sqlite migration path: the JSON store stays
        the executor's resume source of truth, the run-table takes over
        querying (counts, percentiles, recent runs) without re-parsing files.
        """
        seed = row_kwargs.pop("seed", self.testbed_seed)
        for result in self._results.values():
            runtable.record_trial(experiment, result, seed=seed, **row_kwargs)
        return len(self._results)

    def save(self) -> None:
        """Atomically persist the store: a mid-save crash (including power
        loss, which ``os.replace`` alone does not cover) leaves the previous
        on-disk contents intact — the coordinator's crash-resume path reads
        this file, so a truncated store would silently re-run or, worse,
        half-resume a sweep."""
        payload = {
            "testbed_seed": self.testbed_seed,
            "trials": [r.to_json() for r in self._results.values()],
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_experiment(
    spec: ExperimentSpec,
    testbed: Testbed,
    backend: Optional[object] = None,
    store: Optional[ResultStore] = None,
) -> Any:
    """Execute ``spec``'s trials through ``backend`` and reduce the results.

    With a ``store``, trials whose (id, fingerprint) already exist are
    skipped and their cached results reused; fresh results are persisted
    one by one as they complete, so an interrupted run resumes from the
    last finished trial rather than the last finished figure.
    """
    backend = backend or SerialBackend()
    if store is not None:
        # Bind the store to the testbed actually being executed against —
        # cached trial results are meaningless under any other testbed.
        actual_seed = getattr(testbed, "seed", None)
        if store.testbed_seed is None:
            store.testbed_seed = actual_seed
        elif actual_seed is not None and store.testbed_seed != actual_seed:
            raise ValueError(
                f"result store {store.path} holds trials for testbed seed "
                f"{store.testbed_seed}, but this run uses seed {actual_seed}"
            )
    cached: Dict[str, TrialResult] = {}
    pending: List[TrialSpec] = []
    for trial in spec.trials:
        hit = store.get(trial) if store is not None else None
        if hit is not None:
            cached[trial.trial_id] = hit
        else:
            pending.append(trial)
    on_result = None
    if store is not None:
        def on_result(res: TrialResult) -> None:
            store.put(res)
            store.save()
    try:
        fresh = backend.run(testbed, pending, on_result=on_result) if pending else []
    except BaseException:
        # A worker failure (or interrupt) mid-sweep must not lose the trials
        # that already completed: flush whatever reached the store before
        # letting the error propagate. Backends that call ``on_result`` per
        # trial have already persisted those results; this covers backends
        # (or monkeypatched stand-ins) that only ``put`` into the store, and
        # makes the guarantee independent of backend cooperation.
        if store is not None:
            store.save()
        raise
    by_id = dict(cached)
    by_id.update({r.trial_id: r for r in fresh})
    ordered = [by_id[t.trial_id] for t in spec.trials]
    return spec.reduce(ordered)
