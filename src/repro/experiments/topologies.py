"""Reusable topology/scenario library for generated large worlds.

The paper's experiments all run on one 50-node office floor. The scale
experiments instead *generate* worlds: a :class:`TopologySpec` names a
registered placement (grid, uniform, clustered hotspots, corridor, or an
engineered hidden-/exposed-terminal cell tiling), a node count, and the
culling floors the PHY should run with, then builds a
:class:`~repro.net.testbed.Testbed` and a flow workload for it. Everything
is plain data (registry keys + numbers), so specs pickle through the
process-pool executor and fingerprint stably — the same declarative pattern
as MAC and mobility specs. Structured virtual topologies embedded over a
physical substrate are the workload family Fuerst et al. study for VNE
hardness; here they are the controlled inputs the conflict map is graded on.

Worlds grow at constant density (:data:`AREA_PER_NODE_M2` matches the
paper's floor), which is the regime where RSS-cutoff culling buys
sub-linear per-transmission cost: the cutoff radius is fixed by physics, so
the neighborhood a frame touches stays bounded as N grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.testbed import Testbed, TestbedConfig
from repro.net.topology import FloorPlan, PLACEMENTS

Flow = Tuple[int, int]

#: The paper's floor density: 50 nodes on 280 m x 140 m.
AREA_PER_NODE_M2 = 784.0

#: Default culling floors for generated worlds. The delivery floor equals
#: the radio sensitivity (-90 dBm): a frame below it could never be synced,
#: so demoting such receivers to interference-only entries changes no
#: delivery decision (only their per-frame fading excursions are forgone).
#: The interference floor sits 12 dB lower (~7 dB under the -93 dBm noise
#: floor): a culled frame contributes at most ~20% of thermal noise to any
#: aggregate, the explicit approximation that bounds fan-out by
#: neighborhood density.
DELIVERY_FLOOR_DBM = -90.0
INTERFERENCE_FLOOR_DBM = -102.0


@dataclass(frozen=True)
class TopologySpec:
    """A generated world: placement recipe + workload + culling floors.

    ``kind`` keys :data:`repro.net.topology.PLACEMENTS`; ``params`` are the
    placement's keyword knobs as a sorted item tuple (picklable, like
    ``MacSpec.params``). The floor is sized from ``n`` at constant density
    and the given aspect ratio. ``structured`` placements (cell tilings)
    derive their flows from the layout itself; unstructured ones sample
    nearest-neighbour pairs — both avoid the O(N^2) link census.
    """

    kind: str
    n: int
    area_per_node_m2: float = AREA_PER_NODE_M2
    aspect: float = 2.0
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Shadowing override; None keeps the testbed default. Cell tilings set
    #: 0 so the engineered geometry is the channel.
    shadowing_sigma_db: Optional[float] = None
    delivery_floor_dbm: Optional[float] = DELIVERY_FLOOR_DBM
    interference_floor_dbm: Optional[float] = INTERFERENCE_FLOOR_DBM

    def __post_init__(self):
        if self.kind not in PLACEMENTS:
            raise KeyError(
                f"unknown placement {self.kind!r}; registered: "
                f"{sorted(PLACEMENTS)}"
            )
        if self.n <= 1:
            raise ValueError("a world needs at least two nodes")

    @property
    def label(self) -> str:
        return f"{self.kind}/n{self.n}"

    def floor(self) -> FloorPlan:
        """Constant-density floor: area = n * area_per_node, fixed aspect."""
        area = self.n * self.area_per_node_m2
        height = math.sqrt(area / self.aspect)
        return FloorPlan(round(self.aspect * height, 3), round(height, 3))

    def config(self) -> TestbedConfig:
        kw = {}
        if self.shadowing_sigma_db is not None:
            kw["shadowing_sigma_db"] = self.shadowing_sigma_db
        return TestbedConfig(
            num_nodes=self.n,
            floor=self.floor(),
            placement=self.kind,
            placement_params=self.params,
            **kw,
        )

    def build(self, seed: int = 1) -> Testbed:
        """Materialise the world (deterministic in ``(self, seed)``)."""
        return Testbed(seed=seed, config=self.config())

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    @property
    def structured(self) -> bool:
        return self.kind in ("hidden_cells", "exposed_cells")

    def flows(self, testbed: Testbed, flows_n: int, seed: int = 0) -> Tuple[Flow, ...]:
        """The world's saturated-flow workload.

        Structured tilings carry their flows in the layout: node ids are
        cell-major in (s1, r1, s2, r2) order, so cell ``c`` contributes
        flows (4c -> 4c+1) and (4c+2 -> 4c+3); ``flows_n`` caps the number
        of active cells (0 = all). Unstructured worlds sample disjoint
        nearest-neighbour pairs — on a constant-density floor the nearest
        neighbour is roughly one grid pitch away, a strong link by
        construction, with no link table needed.
        """
        if self.structured:
            cells = self.n // 4
            if flows_n > 0:
                cells = min(cells, max(1, flows_n // 2))
            out = []
            for c in range(cells):
                base = 4 * c
                out.append((base, base + 1))
                out.append((base + 2, base + 3))
            return tuple(out)
        return nearest_neighbor_flows(testbed, flows_n, seed)


def nearest_neighbor_flows(
    testbed: Testbed, flows_n: int, seed: int = 0
) -> Tuple[Flow, ...]:
    """Sample ``flows_n`` node-disjoint (sender -> nearest receiver) pairs.

    Senders are drawn uniformly; each pairs with its nearest not-yet-used
    node. Deterministic in (testbed seed, ``seed``), O(flows_n * N), and
    independent of the link table, so it works at any scale.
    """
    positions = testbed.positions
    ids = sorted(positions)
    if flows_n <= 0 or flows_n * 2 > len(ids):
        raise ValueError(
            f"cannot place {flows_n} disjoint flows over {len(ids)} nodes"
        )
    rng = testbed.rngs.fork("scenario", "scale", seed).stream("sample")
    used: set = set()
    flows = []
    while len(flows) < flows_n:
        s = ids[int(rng.integers(0, len(ids)))]
        if s in used:
            continue
        best, best_d = None, float("inf")
        ps = positions[s]
        for r in ids:
            if r == s or r in used:
                continue
            d = ps.distance_to(positions[r])
            if d < best_d:
                best, best_d = r, d
        used.update((s, best))
        flows.append((s, best))
    return tuple(flows)


def default_flows_n(n: int) -> int:
    """Workload density default: one flow per ~8 nodes, at least two."""
    return max(2, n // 8)


# ----------------------------------------------------------------------
# Registry of named topology families
# ----------------------------------------------------------------------
#: family name -> builder(n, **overrides) -> TopologySpec.
TOPOLOGIES: Dict[str, Callable[..., TopologySpec]] = {}


def register_topology(name: str):
    """Decorator registering a ``builder(n, **overrides) -> TopologySpec``."""

    def deco(builder: Callable[..., TopologySpec]):
        TOPOLOGIES[name] = builder
        return builder

    return deco


def build_topology(name: str, n: int, **overrides) -> TopologySpec:
    """Resolve a registered family name + node count into a spec."""
    if name not in TOPOLOGIES:
        raise KeyError(
            f"unknown topology {name!r}; registered: {sorted(TOPOLOGIES)}"
        )
    return TOPOLOGIES[name](n, **overrides)


@register_topology("grid")
def _grid(n: int, **kw) -> TopologySpec:
    """The paper's substrate: offices on a jittered grid."""
    return TopologySpec("grid", n, **kw)


@register_topology("uniform")
def _uniform(n: int, **kw) -> TopologySpec:
    """Uniform-random scatter (warehouse / sensor-dust deployments)."""
    return TopologySpec("uniform", n, **kw)


@register_topology("clustered")
def _clustered(n: int, clusters: int = 0, spread_m: float = 18.0, **kw) -> TopologySpec:
    """Gaussian hotspots: dense rooms on a sparse floor."""
    params = (("clusters", clusters), ("spread_m", spread_m))
    return TopologySpec("clustered", n, params=params, **kw)


@register_topology("corridor")
def _corridor(n: int, **kw) -> TopologySpec:
    """A long hallway: near-1-D chains of hidden/exposed terminals."""
    kw.setdefault("aspect", 12.0)
    return TopologySpec("corridor", n, **kw)


def _round_to_cells(n: int) -> int:
    return max(4, 4 * (n // 4))


# Cell-suite density: the cell grid pitch is ~sqrt(4 * area_per_node) in
# both axes (the floor aspect cancels out of the pitch), minus up to ~10%
# where the integer column count rounds against the ideal. The values
# below keep *adjacent cells'* nearest senders beyond the carrier-sense
# radius (-95 dBm at ~102 m for the testbed defaults) with margin to
# spare at every rounded N and after the +-2 m placement jitter: hidden
# cells (intra-cell sender span 110 m) get worst-case pitch >= ~238 m ->
# >= ~128 m sender gap (~ -98 dBm); exposed cells (span 60 m) get pitch
# >= ~184 m -> >= ~124 m gap. Without the margin, neighbouring cells'
# senders defer to each other and corrupt the engineered regime
# (tests/test_topologies.py pins the gap numerically).


@register_topology("hidden_cells")
def _hidden_cells(n: int, **kw) -> TopologySpec:
    """Engineered hidden-terminal cells tiled to N nodes (shadowing off)."""
    kw.setdefault("area_per_node_m2", 16000.0)
    kw.setdefault("shadowing_sigma_db", 0.0)
    return TopologySpec("hidden_cells", _round_to_cells(n), **kw)


@register_topology("exposed_cells")
def _exposed_cells(n: int, **kw) -> TopologySpec:
    """Engineered exposed-terminal cells tiled to N nodes (shadowing off)."""
    kw.setdefault("area_per_node_m2", 9500.0)
    kw.setdefault("shadowing_sigma_db", 0.0)
    return TopologySpec("exposed_cells", _round_to_cells(n), **kw)


__all__ = [
    "AREA_PER_NODE_M2",
    "DELIVERY_FLOOR_DBM",
    "INTERFERENCE_FLOOR_DBM",
    "TOPOLOGIES",
    "TopologySpec",
    "build_topology",
    "default_flows_n",
    "nearest_neighbor_flows",
    "register_topology",
]
