"""Kernel backend registry: the seam between the simulator and its
numerical kernels.

A *backend* decides how the three kernelised paths run:

* ``buffer_rng`` — whether single-kind RNG streams are wrapped in
  :class:`repro.kernels.rngbuf.BufferedUniformStream` (block refills,
  bit-identical; see the buffer refill determinism rule in that module).
* ``chunk_grids`` — whether the erfc waterfall error model precomputes
  saturated-region chunk kernels (:mod:`repro.kernels.chunkgrid`,
  bit-identical by the grid exactness rule).
* ``native_run_loop`` — whether :meth:`repro.sim.engine.Simulator.run`
  drains the heap through the compiled C loop
  (:mod:`repro.kernels.native`). Identical event ordering and counter
  semantics; opt-in because it needs a C toolchain at first use.

Backends:

=========  ==========  ===========  ================
name       buffer_rng  chunk_grids  native_run_loop
=========  ==========  ===========  ================
python     yes         yes          no   (default)
scalar     no          no           no   (reference)
native     yes         yes          yes  (opt-in)
=========  ==========  ===========  ================

``python`` and ``scalar`` are byte-identical by construction — CI diffs a
full fig12 smoke run under both (the kernel-parity smoke step). ``native``
is selected only via the ``REPRO_KERNEL_BACKEND`` environment variable (or
:func:`set_backend`) and pins its own goldens; on this platform it is
byte-identical too (same libm, same ordering), which
``tests/test_kernels.py`` asserts when a toolchain is available.

The active backend is resolved once per process from
``REPRO_KERNEL_BACKEND`` (so process-pool workers, which inherit the
environment, agree with the parent). :func:`set_backend` overrides it
in-process for tests and the CLI; objects built under the previous backend
(error-model chunk caches, wrapped streams) keep their old behaviour, so
switch backends *before* building networks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernels.rngbuf import BufferedUniformStream

#: Environment variable selecting the backend for a whole process tree.
ENV_VAR = "REPRO_KERNEL_BACKEND"

DEFAULT_BACKEND = "python"


@dataclass(frozen=True)
class KernelBackend:
    """Feature flags of one kernel backend (see module docstring)."""

    name: str
    buffer_rng: bool
    chunk_grids: bool
    native_run_loop: bool = False


BACKENDS: Dict[str, KernelBackend] = {
    "python": KernelBackend("python", buffer_rng=True, chunk_grids=True),
    "scalar": KernelBackend("scalar", buffer_rng=False, chunk_grids=False),
    "native": KernelBackend(
        "native", buffer_rng=True, chunk_grids=True, native_run_loop=True
    ),
}

_active: Optional[KernelBackend] = None
_run_loop = None
_run_loop_resolved = False


def available_backends() -> Tuple[str, ...]:
    return tuple(BACKENDS)


def get_backend() -> KernelBackend:
    """The active backend, resolved once from ``REPRO_KERNEL_BACKEND``."""
    global _active
    if _active is None:
        name = os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
        if name not in BACKENDS:
            raise ValueError(
                f"unknown kernel backend {name!r} in ${ENV_VAR}; "
                f"choose one of {', '.join(sorted(BACKENDS))}"
            )
        _active = BACKENDS[name]
    return _active


def set_backend(name: str) -> KernelBackend:
    """Select a backend in-process (tests, CLI flags).

    Only affects objects built afterwards: error models cache chunk
    kernels and radios/MACs bind their streams at construction, so build
    networks *after* switching.
    """
    global _active, _run_loop, _run_loop_resolved
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"choose one of {', '.join(sorted(BACKENDS))}"
        )
    _active = BACKENDS[name]
    _run_loop = None
    _run_loop_resolved = False
    return _active


def wrap_uniform_stream(rng: np.random.Generator):
    """Buffer a single-kind (``random``/``uniform``-only) stream.

    Returns ``rng`` unchanged when the active backend keeps scalar draws
    (or when it is already buffered), so call sites need no branching.
    The caller asserts the single-kind contract by calling this at all —
    see the buffer refill determinism rule.
    """
    if get_backend().buffer_rng and not isinstance(rng, BufferedUniformStream):
        return BufferedUniformStream(rng)
    return rng


def active_run_loop():
    """The compiled ``(sim, until) -> None`` run loop, or None.

    ``None`` means :meth:`Simulator.run` uses its interpreted loop. The
    resolution (including the one-time C build for the ``native`` backend)
    is cached; a missing toolchain raises with instructions rather than
    silently falling back, so benchmarks can't mis-report their backend.
    """
    global _run_loop, _run_loop_resolved
    if not _run_loop_resolved:
        loop = None
        if get_backend().native_run_loop:
            from repro.kernels.native import load_run_loop

            loop = load_run_loop()
        _run_loop = loop
        _run_loop_resolved = True
    return _run_loop
