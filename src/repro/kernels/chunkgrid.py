"""Precomputed chunk-success kernels for the erfc waterfall error model.

``Reception.success_probability`` spends its time in per-chunk
``log10``/``erfc``/``log1p``/``exp`` evaluations, yet almost every chunk a
real run scores is *saturated*: its SINR sits either far above the PER
waterfall (success is exactly 1.0) or far below it (exactly 0.0). This
module precomputes, per (error model, rate), the exact extent of those
regions — in the **linear power-ratio domain**, so the hot path can skip
the dB conversion too — plus a success table over the waterfall for grid
consumers and tests. Off-region queries fall back to the rate-specialised
fused closure (``NistErrorModel.chunk_fn``), so every returned probability
is bit-identical to the non-grid evaluation (the *grid exactness rule*,
DESIGN.md "Kernels").

Why the regions are exact (NIST model, ``x = steepness * (sinr - sinr50) +
x50``, ``ber = 0.5 * erfc(x)``):

* ``x <= X_ZERO = -0.5``: ``erfc(x) >= erfc(-0.5) ≈ 1.52``, so the fused
  closure's ``ber >= 0.5`` branch fires and returns exactly 0.0 for any
  ``bits > 0``. (The dB-domain margin to x = 0 is ~1 dB at the default
  steepness — astronomically larger than the < 1 ulp libm error.)
* ``x >= X_ONE = 8.5``: ``ber <= 0.5 * erfc(8.5) < 1.4e-32``, hence for any
  ``bits <= BITS_SAFE = 1e7`` the exponent ``|bits * log1p(-ber)| <
  1.4e-25 << 2**-53``, and ``exp`` of it rounds to exactly 1.0 (or the
  ``ber <= 0.0`` branch already returned 1.0).

The ratio-domain thresholds carry a ``_GUARD_DB = 1e-6`` dB margin: libm's
``10 * log10(ratio)`` is correct to well under 1e-12 dB here, so any ratio
at/beyond a threshold maps to an SINR strictly inside its saturated region.
Both boundaries are verified at build time by evaluating the exact closure
at and around them (``_verify``), so a pathological libm fails loudly at
kernel build rather than silently mis-scoring.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

#: Waterfall-argument bound below which chunk success is exactly 0.0.
X_ZERO = -0.5
#: Waterfall-argument bound above which chunk success is exactly 1.0.
X_ONE = 8.5
#: Largest per-chunk bit count the ``x >= X_ONE`` proof covers (1.25 MB —
#: far above any frame the simulator produces).
BITS_SAFE = 1.0e7
#: dB guard margin absorbing libm log10 rounding at the region boundaries.
_GUARD_DB = 1e-6
#: Grid resolution across the waterfall (inclusive endpoints).
GRID_POINTS = 257
#: Reference chunk size for the precomputed success table (1400 B frame).
REF_BITS = 1400 * 8.0


class ChunkKernel:
    """A rate-specialised chunk scorer plus its saturated-region bounds.

    ``chunk(sinr_db, bits)`` is the exact fused closure. ``ratio_zero`` /
    ``ratio_one`` bound the saturated regions in the linear
    ``signal/(interference+noise)`` domain: a caller holding the ratio may
    return 0.0 / 1.0 without computing ``log10`` at all when

    * ``ratio >= ratio_one`` and ``0 <= bits <= bits_safe``  -> 1.0
    * ``ratio <= ratio_zero`` and ``bits > 0``               -> 0.0

    Kernels built without grid support (non-NIST models, or the ``scalar``
    backend) disable both regions by value (``-inf`` / ``+inf`` / 0.0), so
    the caller's comparisons simply never fire — no branching on None.
    """

    __slots__ = (
        "chunk",
        "ratio_zero",
        "ratio_one",
        "bits_safe",
        "sinr_zero_db",
        "sinr_one_db",
        "grid_sinr_db",
        "grid_success",
        "_grid_index",
    )

    def __init__(
        self,
        chunk: Callable[[float, float], float],
        ratio_zero: float = -math.inf,
        ratio_one: float = math.inf,
        bits_safe: float = 0.0,
        sinr_zero_db: float = -math.inf,
        sinr_one_db: float = math.inf,
        grid_sinr_db: Tuple[float, ...] = (),
        grid_success: Tuple[float, ...] = (),
    ):
        self.chunk = chunk
        self.ratio_zero = ratio_zero
        self.ratio_one = ratio_one
        self.bits_safe = bits_safe
        self.sinr_zero_db = sinr_zero_db
        self.sinr_one_db = sinr_one_db
        self.grid_sinr_db = grid_sinr_db
        self.grid_success = grid_success
        self._grid_index = {s: i for i, s in enumerate(grid_sinr_db)}

    def lookup(self, sinr_db: float, bits: float) -> float:
        """Grid-first scoring for dB-domain queries (analysis/tests).

        Saturated regions short-circuit; an exact grid hit at the
        reference bit count is served from the precomputed table; anything
        else evaluates the exact closure. Always bit-identical to
        ``chunk(sinr_db, bits)``.
        """
        if sinr_db >= self.sinr_one_db and 0.0 <= bits <= self.bits_safe:
            return 1.0
        if sinr_db <= self.sinr_zero_db and bits > 0.0:
            return 0.0
        if bits == REF_BITS:
            idx = self._grid_index.get(sinr_db)
            if idx is not None:
                return self.grid_success[idx]
        return self.chunk(sinr_db, bits)


def null_chunk_kernel(chunk: Callable[[float, float], float]) -> ChunkKernel:
    """A kernel with both saturated regions disabled (exact path only)."""
    return ChunkKernel(chunk)


def _verify(
    chunk: Callable[[float, float], float],
    sinr_zero_db: float,
    sinr_one_db: float,
    ratio_zero: float,
    ratio_one: float,
) -> None:
    """Fail loudly at build time if a region boundary is not exact."""
    probes_one = [sinr_one_db, 10.0 * math.log10(ratio_one)]
    probes_one.append(10.0 * math.log10(math.nextafter(ratio_one, math.inf)))
    for s in probes_one:
        for bits in (1.0, REF_BITS, BITS_SAFE):
            if chunk(s, bits) != 1.0:
                raise RuntimeError(
                    f"chunk-grid exactness violated at the success boundary "
                    f"(sinr={s!r}, bits={bits!r}): libm erfc/exp on this "
                    f"platform breaks the X_ONE proof"
                )
    probes_zero = [sinr_zero_db, 10.0 * math.log10(ratio_zero)]
    probes_zero.append(10.0 * math.log10(math.nextafter(ratio_zero, 0.0)))
    for s in probes_zero:
        for bits in (1e-9, 1.0, BITS_SAFE):
            if chunk(s, bits) != 0.0:
                raise RuntimeError(
                    f"chunk-grid exactness violated at the failure boundary "
                    f"(sinr={s!r}, bits={bits!r}): libm erfc on this "
                    f"platform breaks the X_ZERO proof"
                )


def nist_chunk_kernel(
    steepness_per_db: float,
    sinr50_db: float,
    x50: float,
    chunk: Callable[[float, float], float],
    grid_points: Optional[int] = None,
) -> ChunkKernel:
    """Build the saturated-region kernel for one (NIST model, rate) pair.

    ``chunk`` must be the rate's exact fused closure
    (``NistErrorModel.chunk_fn(rate)``); it remains the off-region scorer,
    so grid-enabled and grid-disabled evaluation are bit-identical.
    """
    if steepness_per_db <= 0.0:
        raise ValueError("steepness must be positive")
    sinr_zero_db = sinr50_db + (X_ZERO - x50) / steepness_per_db
    sinr_one_db = sinr50_db + (X_ONE - x50) / steepness_per_db
    ratio_zero = 10.0 ** ((sinr_zero_db - _GUARD_DB) / 10.0)
    ratio_one = 10.0 ** ((sinr_one_db + _GUARD_DB) / 10.0)
    _verify(chunk, sinr_zero_db, sinr_one_db, ratio_zero, ratio_one)
    n = GRID_POINTS if grid_points is None else grid_points
    if n < 2:
        raise ValueError("grid needs at least 2 points")
    span = sinr_one_db - sinr_zero_db
    grid = tuple(sinr_zero_db + span * (i / (n - 1)) for i in range(n))
    table = tuple(chunk(s, REF_BITS) for s in grid)
    return ChunkKernel(
        chunk,
        ratio_zero=ratio_zero,
        ratio_one=ratio_one,
        bits_safe=BITS_SAFE,
        sinr_zero_db=sinr_zero_db,
        sinr_one_db=sinr_one_db,
        grid_sinr_db=grid,
        grid_success=table,
    )
