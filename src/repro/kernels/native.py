"""On-demand build and loader for the compiled kernel module.

The ``native`` backend's C sources live next to this file (``_native.c``)
and are compiled at first use with the system C compiler — no build step,
no packaging dependency. The shared object is cached under
``kernels/_build/`` keyed by a hash of the source, so rebuilds happen only
when the source changes; the compile lands via ``os.replace`` so
concurrent pool workers race benignly. A missing toolchain raises
:class:`NativeUnavailable` with instructions (the backend is opt-in via
``REPRO_KERNEL_BACKEND=native``, so failing loudly beats silently
benchmarking the wrong loop).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path

_SRC = Path(__file__).with_name("_native.c")
_BUILD_DIR = Path(__file__).with_name("_build")

_module = None


class NativeUnavailable(RuntimeError):
    """The compiled kernel cannot be built or loaded on this host."""


def _find_compiler() -> str:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    raise NativeUnavailable(
        "REPRO_KERNEL_BACKEND=native needs a C compiler (cc/gcc/clang) on "
        "PATH to build repro/kernels/_native.c; install one or unset the "
        "variable to use the pure-python backend"
    )


def shared_object_path() -> Path:
    """Cache path for the current source (hash-keyed)."""
    tag = hashlib.blake2b(_SRC.read_bytes(), digest_size=8).hexdigest()
    return _BUILD_DIR / f"_native_{tag}.so"


def build(force: bool = False) -> Path:
    """Compile ``_native.c`` if the cached build is stale; return the .so."""
    so = shared_object_path()
    if so.exists() and not force:
        return so
    cc = _find_compiler()
    include = sysconfig.get_paths()["include"]
    _BUILD_DIR.mkdir(exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
    os.close(fd)
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        f"-I{include}",
        str(_SRC),
        "-o",
        tmp,
        "-lm",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        raise NativeUnavailable(f"C compile failed to run: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        raise NativeUnavailable(
            "C compile of repro/kernels/_native.c failed:\n"
            + proc.stderr[-2000:]
        )
    os.replace(tmp, so)
    return so


def load_native_module():
    """Import (building if needed) the compiled ``_native`` module."""
    global _module
    if _module is None:
        so = build()
        spec = importlib.util.spec_from_file_location(
            "repro.kernels._native", so
        )
        if spec is None or spec.loader is None:  # pragma: no cover
            raise NativeUnavailable(f"cannot load extension at {so}")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        _module = mod
    return _module


def load_run_loop():
    """A ``(sim, until) -> None`` callable backed by the C drain loop.

    Ordering, counter updates, and exception behaviour match
    ``Simulator.run``'s interpreted loop exactly (see ``_native.c``); the
    ``until`` clock clamp stays in Python, as in the interpreted version.
    """
    mod = load_native_module()
    run_drain = mod.run_drain
    from _heapq import heappop  # the C heappop, same as heapq.heappop

    def run_loop(sim, until) -> None:
        run_drain(sim, heappop, until)
        if until is not None:
            sim.now = max(sim.now, until)

    return run_loop
