/* Compiled event-loop kernel for the `native` kernel backend.
 *
 * run_drain(sim, heappop, until) mirrors Simulator.run's interpreted loop
 * statement for statement: same pop order, same cancelled-entry handling,
 * same now/_live/_events_processed update points, same finally-style
 * counter write-back on exceptions. Heap pops go through the _heapq C
 * heappop callable passed in by the loader, so the heap invariant and the
 * (time, priority, seq) comparison semantics are exactly CPython's.
 *
 * Built on demand by repro/kernels/native.py (cc -O2 -shared); see that
 * module for the cache/atomic-replace story.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

static PyObject *s_now;        /* "now" */
static PyObject *s_live;       /* "_live" */
static PyObject *s_heap;       /* "_heap" */
static PyObject *s_cancelled;  /* "cancelled" */
static PyObject *s_sim;        /* "_sim" */
static PyObject *s_events;     /* "_events_processed" */
static PyObject *c_one;        /* int 1 */

/* sim._live -= 1 (read-modify-write: callbacks also touch the counter). */
static int
dec_live(PyObject *sim)
{
    PyObject *cur = PyObject_GetAttr(sim, s_live);
    PyObject *next;
    int r;
    if (cur == NULL)
        return -1;
    next = PyNumber_Subtract(cur, c_one);
    Py_DECREF(cur);
    if (next == NULL)
        return -1;
    r = PyObject_SetAttr(sim, s_live, next);
    Py_DECREF(next);
    return r;
}

/* sim._events_processed += n, preserving any in-flight exception (the
 * interpreted loop's try/finally). */
static void
credit_events(PyObject *sim, long n)
{
    PyObject *ptype, *pval, *ptb;
    PyObject *cur, *add, *tot;
    if (n == 0)
        return;
    PyErr_Fetch(&ptype, &pval, &ptb);
    cur = PyObject_GetAttr(sim, s_events);
    if (cur != NULL) {
        add = PyLong_FromLong(n);
        if (add != NULL) {
            tot = PyNumber_Add(cur, add);
            if (tot != NULL) {
                (void)PyObject_SetAttr(sim, s_events, tot);
                Py_DECREF(tot);
            }
            Py_DECREF(add);
        }
        Py_DECREF(cur);
    }
    /* The counter is bookkeeping; an original exception outranks any
     * failure updating it. */
    if (ptype != NULL)
        PyErr_Restore(ptype, pval, ptb);
    else if (PyErr_Occurred())
        PyErr_Clear();
}

static PyObject *
run_drain(PyObject *self, PyObject *args)
{
    PyObject *sim, *heappop, *until_obj, *heap;
    int has_until;
    double until = 0.0;
    long n = 0;
    int err = 0;

    if (!PyArg_ParseTuple(args, "OOO:run_drain", &sim, &heappop, &until_obj))
        return NULL;
    has_until = (until_obj != Py_None);
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    heap = PyObject_GetAttr(sim, s_heap);
    if (heap == NULL)
        return NULL;
    if (!PyList_Check(heap)) {
        Py_DECREF(heap);
        PyErr_SetString(PyExc_TypeError, "sim._heap must be a list");
        return NULL;
    }

    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *entry = NULL;
        PyObject *ev;

        if (has_until) {
            /* Peek; pop only once the head is live and within `until`. */
            PyObject *head = PyList_GET_ITEM(heap, 0); /* borrowed */
            double t;
            if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) < 6) {
                PyErr_SetString(PyExc_TypeError, "malformed heap entry");
                err = 1;
                break;
            }
            ev = PyTuple_GET_ITEM(head, 3);
            if (ev != Py_None) {
                PyObject *c = PyObject_GetAttr(ev, s_cancelled);
                int canc;
                if (c == NULL) {
                    err = 1;
                    break;
                }
                canc = PyObject_IsTrue(c);
                Py_DECREF(c);
                if (canc < 0) {
                    err = 1;
                    break;
                }
                if (canc) {
                    PyObject *dead = PyObject_CallOneArg(heappop, heap);
                    if (dead == NULL) {
                        err = 1;
                        break;
                    }
                    Py_DECREF(dead);
                    continue;
                }
            }
            t = PyFloat_AsDouble(PyTuple_GET_ITEM(head, 0));
            if (t == -1.0 && PyErr_Occurred()) {
                err = 1;
                break;
            }
            if (t > until)
                break;
            entry = PyObject_CallOneArg(heappop, heap);
            if (entry == NULL) {
                err = 1;
                break;
            }
            ev = PyTuple_GET_ITEM(entry, 3);
            if (ev != Py_None &&
                PyObject_SetAttr(ev, s_sim, Py_None) < 0) {
                Py_DECREF(entry);
                err = 1;
                break;
            }
        } else {
            entry = PyObject_CallOneArg(heappop, heap);
            if (entry == NULL) {
                err = 1;
                break;
            }
            if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) < 6) {
                Py_DECREF(entry);
                PyErr_SetString(PyExc_TypeError, "malformed heap entry");
                err = 1;
                break;
            }
            ev = PyTuple_GET_ITEM(entry, 3);
            if (ev != Py_None) {
                PyObject *c = PyObject_GetAttr(ev, s_cancelled);
                int canc;
                if (c == NULL) {
                    Py_DECREF(entry);
                    err = 1;
                    break;
                }
                canc = PyObject_IsTrue(c);
                Py_DECREF(c);
                if (canc < 0) {
                    Py_DECREF(entry);
                    err = 1;
                    break;
                }
                if (canc) {
                    Py_DECREF(entry);
                    continue;
                }
                if (PyObject_SetAttr(ev, s_sim, Py_None) < 0) {
                    Py_DECREF(entry);
                    err = 1;
                    break;
                }
            }
        }

        /* self.now = entry[0]; n += 1; self._live -= 1; fn(*args) */
        if (PyObject_SetAttr(sim, s_now, PyTuple_GET_ITEM(entry, 0)) < 0) {
            Py_DECREF(entry);
            err = 1;
            break;
        }
        n += 1;
        if (dec_live(sim) < 0) {
            Py_DECREF(entry);
            err = 1;
            break;
        }
        {
            PyObject *fn = PyTuple_GET_ITEM(entry, 4);
            PyObject *cargs = PyTuple_GET_ITEM(entry, 5);
            PyObject *res;
            if (!PyTuple_Check(cargs)) {
                Py_DECREF(entry);
                PyErr_SetString(PyExc_TypeError, "heap entry args not a tuple");
                err = 1;
                break;
            }
            res = PyObject_Call(fn, cargs, NULL);
            Py_DECREF(entry);
            if (res == NULL) {
                err = 1;
                break;
            }
            Py_DECREF(res);
        }
    }

    credit_events(sim, n);
    Py_DECREF(heap);
    if (err)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef native_methods[] = {
    {"run_drain", run_drain, METH_VARARGS,
     "run_drain(sim, heappop, until) -- drain the event heap (C loop)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "_native",
    "Compiled kernels for the repro simulator (engine run loop).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    s_now = PyUnicode_InternFromString("now");
    s_live = PyUnicode_InternFromString("_live");
    s_heap = PyUnicode_InternFromString("_heap");
    s_cancelled = PyUnicode_InternFromString("cancelled");
    s_sim = PyUnicode_InternFromString("_sim");
    s_events = PyUnicode_InternFromString("_events_processed");
    c_one = PyLong_FromLong(1);
    if (s_now == NULL || s_live == NULL || s_heap == NULL ||
        s_cancelled == NULL || s_sim == NULL || s_events == NULL ||
        c_one == NULL)
        return NULL;
    return PyModule_Create(&native_module);
}
