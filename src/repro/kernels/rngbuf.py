"""Block-refilled RNG buffers, bit-identical to per-draw generation.

The determinism foundation: for ``numpy.random.Generator``, an array draw
``gen.random(n)`` consumes the bit-generator stream exactly as ``n``
successive scalar ``gen.random()`` calls would, and produces the identical
doubles element-by-element. :class:`BufferedUniformStream` exploits that to
amortise the per-draw Generator call overhead: it pulls a block of uniforms
at once and drains it scalar-by-scalar, refilling when empty. Every value
handed out is the same bit pattern the wrapped generator would have produced
at the same point in the stream (the lockstep property tests in
``tests/test_kernels.py`` pin this across refill boundaries and forks).

Scope rule (the *buffer refill determinism rule*, see DESIGN.md "Kernels"):
only streams consumed through a **single distribution kind** may be
buffered. A stream that interleaves distributions (e.g. a radio stream
serving both ziggurat ``standard_normal`` fade draws and ``random()``
delivery flips) cannot be block-buffered bit-identically, because the block
draw advances the underlying bit-generator past state the other
distribution would have consumed — ziggurat draws consume a variable number
of raw outputs. Such streams stay scalar in the default backend. The two
streams that qualify today:

* CMAP-family MAC streams — every draw is ``random()`` or
  ``uniform(lo, hi)``, and ``Generator.uniform(lo, hi)`` consumes exactly
  one double computed as ``lo + (hi - lo) * random()`` (the decomposition
  PR 2 lockstep-proved and ``core/cmap_mac.py`` already relies on).
* Radio streams on channels whose fading consumes no RNG
  (``config.fading is None`` or :class:`repro.phy.fading.NoFading`) —
  the only draw left is the per-delivery ``random()`` coin flip.

Buffers grow geometrically (64 → 4096 doubles) so idle streams don't pay a
4096-draw refill, while hot streams amortise to full blocks.
"""

from __future__ import annotations

import numpy as np

#: First refill size; doubles each refill up to the instance cap.
MIN_BLOCK = 64
#: Default steady-state refill size for hot streams.
MAX_BLOCK = 4096


class BufferedUniformStream:
    """A ``random()``/``uniform()``-only facade over a Generator.

    Draws are served from a pre-filled block (a plain Python list, so the
    hot path is a list index, not a numpy scalar extraction) and are
    bit-identical to scalar draws from the wrapped generator. Any other
    Generator method is deliberately *absent* — an ``AttributeError`` is
    the guard against a consumer silently desynchronising the stream by
    drawing a distribution the buffer doesn't model.
    """

    __slots__ = ("generator", "_buf", "_idx", "_len", "_block", "_cap", "_block_state")

    def __init__(self, generator: np.random.Generator, block: int = MAX_BLOCK):
        if isinstance(generator, BufferedUniformStream):
            raise TypeError("generator is already buffered")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.generator = generator
        self._buf: list = []
        self._idx = 0
        self._len = 0
        self._block = min(MIN_BLOCK, block)
        self._cap = block
        #: Bit-generator state snapshotted before the live block, for detach().
        self._block_state = None

    def _refill(self) -> None:
        gen = self.generator
        # Snapshot the bit-generator state *before* the block draw so
        # detach() can rewind and replay only the consumed prefix.
        self._block_state = gen.bit_generator.state
        block = self._block
        self._buf = gen.random(block).tolist()
        self._len = block
        self._idx = 0
        if block < self._cap:
            self._block = min(block * 2, self._cap)

    def random(self) -> float:
        """One uniform double in [0, 1); same bits as ``generator.random()``."""
        i = self._idx
        if i >= self._len:
            self._refill()
            i = 0
        self._idx = i + 1
        return self._buf[i]

    def uniform(self, low: float, high: float) -> float:
        """Uniform in [low, high); same bits as ``generator.uniform``.

        ``Generator.uniform(low, high)`` draws one double and computes
        ``low + (high - low) * u`` — the exact decomposition used here (and
        already relied on by ``core/cmap_mac.py``'s jitter draws).
        """
        i = self._idx
        if i >= self._len:
            self._refill()
            i = 0
        self._idx = i + 1
        return low + (high - low) * self._buf[i]

    def pending(self) -> int:
        """Buffered draws not yet handed out (diagnostics/tests)."""
        return self._len - self._idx

    def detach(self) -> np.random.Generator:
        """Return the wrapped generator positioned as if never buffered.

        The generator's bit stream is rewound to the start of the live
        block and advanced by exactly the draws this buffer handed out, so
        scalar consumption can continue bit-identically (e.g. when a radio
        config swap introduces a fading model that needs the raw stream).
        """
        gen = self.generator
        if self._block_state is not None:
            gen.bit_generator.state = self._block_state
            if self._idx:
                gen.random(self._idx)  # discard exactly the consumed prefix
        self._buf = []
        self._idx = 0
        self._len = 0
        self._block_state = None
        return gen
