"""Vectorized/batched numerical kernels behind a pluggable backend.

This package is the simulator's numerical kernel layer (DESIGN.md
"Kernels"): block-buffered RNG streams (:mod:`repro.kernels.rngbuf`),
precomputed chunk-success kernels for the erfc waterfall
(:mod:`repro.kernels.chunkgrid`), and an optional compiled engine loop
(:mod:`repro.kernels.native`), all selected through the backend registry
(:mod:`repro.kernels.backend`, ``REPRO_KERNEL_BACKEND``).
"""

from repro.kernels.backend import (  # noqa: F401
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelBackend,
    active_run_loop,
    available_backends,
    get_backend,
    set_backend,
    wrap_uniform_stream,
)
from repro.kernels.chunkgrid import ChunkKernel, nist_chunk_kernel, null_chunk_kernel  # noqa: F401
from repro.kernels.rngbuf import BufferedUniformStream  # noqa: F401
