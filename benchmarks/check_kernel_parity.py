"""CI kernel-parity gate: the kernel layer must not move a single bit.

Runs the fig12 smoke sweep twice in fresh interpreters — once with the
kernels force-disabled (``REPRO_KERNEL_BACKEND=scalar``: per-draw RNG, no
chunk grids, interpreted run loop) and once with the default backend
(``python``: buffered streams + saturated-region grids) — and diffs both
the persisted per-trial result JSON and the rendered figure report
**byte for byte**. Any divergence means a kernel broke the lockstep /
grid-exactness contracts (see DESIGN.md "Kernels") and fails the job.

Usage::

    python benchmarks/check_kernel_parity.py [--backend python]

``--backend`` selects which enabled backend to diff against the scalar
reference (``native`` additionally exercises the compiled run loop; it
needs a C toolchain on the runner).
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_fig12(backend: str, out_path: str) -> bytes:
    """One fig12 smoke sweep in a fresh interpreter; returns the report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["REPRO_KERNEL_BACKEND"] = backend
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "fig12",
            "--scale",
            "smoke",
            "--out",
            out_path,
        ],
        env=env,
        cwd=REPO,
        capture_output=True,
        timeout=1800,
    )
    if proc.returncode != 0:
        sys.stderr.buffer.write(proc.stderr)
        raise SystemExit(
            f"fig12 smoke run failed under backend {backend!r} "
            f"(exit {proc.returncode})"
        )
    return proc.stdout


#: Elapsed-wall-clock annotations in the rendered report (e.g. ``[2.8s]``)
#: are the one legitimately nondeterministic part of the output.
_WALL_CLOCK = re.compile(rb"\[\d+(?:\.\d+)?s\]")


def mask_wall_clock(report: bytes) -> bytes:
    return _WALL_CLOCK.sub(b"[Xs]", report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="python",
        help="enabled backend to compare against the scalar reference "
        "(default python)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        ref_path = os.path.join(tmp, "fig12_scalar.json")
        cur_path = os.path.join(tmp, f"fig12_{args.backend}.json")
        ref_report = mask_wall_clock(run_fig12("scalar", ref_path))
        cur_report = mask_wall_clock(run_fig12(args.backend, cur_path))
        with open(ref_path, "rb") as fh:
            ref_json = fh.read()
        with open(cur_path, "rb") as fh:
            cur_json = fh.read()

    failed = False
    if ref_json != cur_json:
        print(
            f"KERNEL PARITY VIOLATION: per-trial results differ between "
            f"scalar and {args.backend} ({len(ref_json)} vs "
            f"{len(cur_json)} bytes)"
        )
        failed = True
    if ref_report != cur_report:
        print(
            f"KERNEL PARITY VIOLATION: rendered fig12 report differs "
            f"between scalar and {args.backend}"
        )
        for i, (a, b) in enumerate(
            zip(ref_report.splitlines(), cur_report.splitlines())
        ):
            if a != b:
                print(f"  first differing line {i}:")
                print(f"    scalar : {a!r}")
                print(f"    {args.backend}: {b!r}")
                break
        failed = True
    if failed:
        return 1
    print(
        f"kernel parity ok: fig12 smoke is byte-identical under "
        f"scalar and {args.backend} ({len(ref_json)} bytes of trial "
        f"results, {len(ref_report)} bytes of report)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
