"""CI gate for ``cli profile`` output: assert the PROFILE_*.json schema.

The profile-smoke CI step runs ``python -m repro.cli profile --scale smoke``
and then this script, which fails the job when the emitted attribution
payload is structurally broken — missing layers, empty figures, fractions
that do not partition the profiled time — so the artifact the next perf PR
starts from is guaranteed usable.

Usage::

    python benchmarks/check_profile_schema.py \
        --profile "profile-out/PROFILE_*.json"

``--profile`` accepts a glob; the newest match is checked.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.perf import PROFILE_SCHEMA, REQUIRED_LAYERS  # noqa: E402

_TOP_LEVEL_KEYS = (
    "schema",
    "created_utc",
    "scale",
    "seed",
    "kernel_backend",
    "figures",
)
_LAYER_KEYS = ("self_seconds", "called_seconds", "seconds", "fraction", "top")


def check(payload: dict) -> list:
    """Return a list of schema violations (empty = valid)."""
    errors = []
    for key in _TOP_LEVEL_KEYS:
        if key not in payload:
            errors.append(f"missing top-level key {key!r}")
    if errors:
        return errors
    if payload["schema"] != PROFILE_SCHEMA:
        errors.append(f"schema {payload['schema']!r} != expected {PROFILE_SCHEMA}")
    figures = payload["figures"]
    if not figures:
        errors.append("figures is empty")
    for name, profile in figures.items():
        prefix = f"figures[{name!r}]"
        for key in (
            "figure",
            "wall_seconds",
            "profiled_seconds",
            "mac_share",
            "layers",
        ):
            if key not in profile:
                errors.append(f"{prefix}: missing {key!r}")
        mac_share = profile.get("mac_share")
        if mac_share is not None:
            if not 0.0 <= mac_share <= 1.0:
                errors.append(f"{prefix}: mac_share {mac_share} outside [0, 1]")
            mac_fraction = profile.get("layers", {}).get("mac", {}).get("fraction")
            if mac_fraction is not None and mac_share != mac_fraction:
                errors.append(
                    f"{prefix}: mac_share {mac_share} != layers.mac.fraction "
                    f"{mac_fraction}"
                )
        layers = profile.get("layers", {})
        for layer in REQUIRED_LAYERS:
            if layer not in layers:
                errors.append(f"{prefix}: missing required layer {layer!r}")
        fraction_sum = 0.0
        for layer, entry in layers.items():
            for key in _LAYER_KEYS:
                if key not in entry:
                    errors.append(f"{prefix}.{layer}: missing {key!r}")
            fraction = entry.get("fraction", 0.0)
            if not 0.0 <= fraction <= 1.0:
                errors.append(f"{prefix}.{layer}: fraction {fraction} outside [0, 1]")
            fraction_sum += fraction
        if profile.get("profiled_seconds", 0.0) <= 0.0:
            errors.append(f"{prefix}: profiled_seconds is not positive")
        # Self/called seconds partition the profiled total; rounding may
        # shave a little, but a large gap means attribution lost time.
        if figures and not 0.90 <= fraction_sum <= 1.05:
            errors.append(
                f"{prefix}: layer fractions sum to {fraction_sum:.3f}, "
                "expected ~1.0"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        required=True,
        help="emitted PROFILE file (glob ok; newest match wins)",
    )
    args = parser.parse_args(argv)

    matches = sorted(glob.glob(args.profile), key=os.path.getmtime)
    if not matches:
        print(f"ERROR: no profile file matches {args.profile!r}")
        return 2
    path = matches[-1]
    with open(path) as fh:
        payload = json.load(fh)

    errors = check(payload)
    print(f"profile file: {path}")
    if errors:
        for error in errors:
            print(f"  SCHEMA VIOLATION: {error}")
        return 1
    for name, profile in payload["figures"].items():
        ordered = sorted(
            profile["layers"].items(),
            key=lambda item: item[1]["seconds"],
            reverse=True,
        )
        summary = ", ".join(
            f"{layer} {entry['fraction']:.0%}" for layer, entry in ordered[:4]
        )
        print(f"  {name}: {profile['profiled_seconds']:.2f}s profiled; {summary}")
    print("profile schema ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
