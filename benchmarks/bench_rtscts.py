"""Related-work baseline: RTS/CTS virtual carrier sense (MACA [7], §6).

The paper's argument, quantified: RTS/CTS helps hidden terminals (cheap
control-frame collisions instead of long data collisions) but does *not*
solve — indeed worsens — the exposed-terminal problem, because exposed
senders honour each other's reservations. CMAP should beat it soundly on
exposed pairs and match it on hidden pairs.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import (
    find_exposed_terminal_configs,
    find_hidden_terminal_configs,
)
from repro.mac.rtscts import rtscts_factory
from repro.network import cmap_factory, dcf_factory


def _exposed(testbed, scale):
    configs = find_exposed_terminal_configs(testbed, scale.configs)
    protocols = {
        "cs_on": dcf_factory(True, True),
        "rts_cts": rtscts_factory(),
        "cmap": cmap_factory(),
    }
    return run_pair_cdf_experiment(
        "rtscts_exposed",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def _hidden(testbed, scale):
    configs = find_hidden_terminal_configs(testbed, scale.configs)
    protocols = {
        "cs_on": dcf_factory(True, True),
        "rts_cts": rtscts_factory(),
        "cmap": cmap_factory(),
    }
    return run_pair_cdf_experiment(
        "rtscts_hidden",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_rtscts_exposed_terminals(benchmark, testbed, scale):
    result = run_once(benchmark, _exposed, testbed, scale)
    print()
    print(render_pair_cdf(result, "RTS/CTS vs CMAP — exposed terminals (§6)"))
    benchmark.extra_info["cmap_over_rtscts"] = round(
        result.gain_over("cmap", "rts_cts"), 2
    )
    # RTS/CTS must not exploit exposure: it stays near/below plain CS.
    assert result.median("rts_cts") <= result.median("cs_on") * 1.1
    # CMAP exploits it.
    assert result.gain_over("cmap", "rts_cts") > 1.3


def test_rtscts_hidden_terminals(benchmark, testbed, scale):
    result = run_once(benchmark, _hidden, testbed, scale)
    print()
    print(render_pair_cdf(result, "RTS/CTS vs CMAP — hidden terminals (§6)"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # All three land near the single-pair rate; CMAP doesn't degrade.
    assert med["cmap"] > 0.7 * max(med.values())
