"""CI service-smoke gate: the HTTP sweep path must match the serial path.

Boots ``python -m repro.cli serve`` as a real subprocess (ephemeral port,
throwaway data dir), submits the fig12 smoke sweep over HTTP, tails the
job to completion, and then checks the whole pipeline end to end:

* the job finishes ``done`` with every trial completed;
* the run-table holds exactly one row per trial of the sweep;
* every flow throughput served back over HTTP is **bit-identical** to
  running the same spec in-process through ``SerialBackend``;
* the run-table's percentile summary equals
  ``repro.analysis.stats.percentile`` over the same totals.

With ``--chaos`` the same sweep runs under the canned ``smoke-chaos``
fault plan (see :func:`repro.service.faults.canned_plan`) and the gate
additionally proves the failure story: the client's first submit response
is truncated on the wire and the idempotent retry deduplicates
server-side (one job, not two); an injected worker kill breaks and
replaces the process pool; a store-write failure and a sqlite busy burst
are absorbed by retries; an injected ``os._exit`` kills the server
mid-job and a restarted server resumes the job to ``done`` — with the
final rows still bit-identical to the serial reference.

With ``--workers`` the sweep is executed by a *remote fleet* instead of
the server's local threads: two ``python -m repro.cli work`` daemons
(running the canned ``worker-chaos`` transport fault plan) lease the job
over HTTP, and the gate SIGKILLs whichever worker holds the lease as soon
as its first row lands. The lease must be reaped, the survivor must
re-lease and finish from the server-side cache sweep, and the final rows
must be bit-identical to serial with zero duplicates — one row per trial
even though uploads were dropped, delayed, duplicated, and truncated and
a worker died mid-lease.

Usage::

    PYTHONPATH=src python benchmarks/check_service_smoke.py [--seed 1]
    PYTHONPATH=src python benchmarks/check_service_smoke.py --chaos
    PYTHONPATH=src python benchmarks/check_service_smoke.py --workers

Exits non-zero (with a diff report) on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import stats  # noqa: E402
from repro.experiments.executor import SerialBackend  # noqa: E402
from repro.experiments.runners import (  # noqa: E402
    ExperimentScale,
    build_exposed_terminals,
)
from repro.net.testbed import Testbed  # noqa: E402
from repro.service.http_api import ServiceClient  # noqa: E402


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for_health(client: ServiceClient, proc, deadline_s: float = 30.0) -> None:
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with {proc.returncode}")
        try:
            if client.health().get("ok"):
                return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError("server did not become healthy in time")


def serial_reference(seed: int):
    """The in-process reference: same builder call the server makes (the
    submitted seed feeds both the testbed and the builder's scenario/run
    seed), run through SerialBackend."""
    testbed = Testbed(seed=seed)
    spec = build_exposed_terminals(
        testbed, scale=ExperimentScale.smoke(), seed=seed)
    reference = {r.trial_id: r
                 for r in SerialBackend().run(testbed, list(spec.trials))}
    return spec, reference


def start_serve(port: int, data_dir: str, env: dict, extra=()):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--data-dir", data_dir, *extra],
        env=env,
    )


def start_work(url: str, worker_id: str, data_dir: str, env: dict):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "work",
         "--url", url, "--worker-id", worker_id, "--poll", "0.2",
         "--fault-plan", "worker-chaos",
         "--fault-state", os.path.join(data_dir, f"faults-{worker_id}")],
        env=env,
    )


def stop_serve(proc) -> None:
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()


def check_results(client, spec, reference, final, failures) -> None:
    """The shared postcondition: job done, one row per trial, every flow
    throughput bit-identical to serial, percentiles == analysis.stats."""
    if final is None or final["state"] != "done":
        failures.append(f"job did not finish done: {final}")
    elif final["completed"] != len(spec.trials):
        failures.append(
            f"completed {final['completed']} != {len(spec.trials)}")

    runs = client.runs(experiment=spec.name,
                       limit=len(spec.trials) + 10,
                       with_payload=True)
    rows = runs["runs"]
    if runs["counts"].get(spec.name) != len(spec.trials):
        failures.append(
            f"run-table rows {runs['counts'].get(spec.name)} != "
            f"{len(spec.trials)} trials")
    ids = [row["trial_id"] for row in rows]
    if len(ids) != len(set(ids)):
        failures.append(f"duplicate run-table rows: {sorted(ids)}")

    for row in rows:
        ref = reference.get(row["trial_id"])
        if ref is None:
            failures.append(f"unexpected row {row['trial_id']}")
            continue
        got = {(s, d): v for s, d, v in row["payload"]["flow_mbps"]}
        want = ref.flow_mbps
        if got != want:
            failures.append(
                f"{row['trial_id']}: HTTP {got} != serial {want}")

    totals = [sum(r.flow_mbps.values()) for r in reference.values()]
    summary = client.summary(spec.name, "total_mbps", qs=(10, 50, 90))
    for q in (10, 50, 90):
        want = stats.percentile(totals, q)
        got = summary["percentiles"][str(float(q))]
        if got != want:
            failures.append(f"p{q}: HTTP {got} != stats {want}")
    if summary["count"] != len(spec.trials):
        failures.append(
            f"summary count {summary['count']} != {len(spec.trials)}")


def run_smoke(args, env) -> int:
    port = free_port()
    failures = []
    with tempfile.TemporaryDirectory() as data_dir:
        proc = start_serve(port, data_dir, env)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            wait_for_health(client, proc)

            reply = client.submit_builder("fig12", scale="smoke",
                                          seed=args.seed)
            print(f"[submitted {reply['name']} as {reply['job_id']} "
                  f"({reply['trials']} trials)]")
            deadline = time.monotonic() + args.timeout
            final = None
            for progress in client.tail(reply["job_id"], wait=10.0):
                print(f"  {progress['state']:<9} "
                      f"{progress['completed']}/{progress['total']}")
                final = progress
                if time.monotonic() > deadline:
                    failures.append("tail timed out")
                    break

            spec, reference = serial_reference(args.seed)
            check_results(client, spec, reference, final, failures)
        finally:
            stop_serve(proc)

    if failures:
        print("\nSERVICE SMOKE FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nservice smoke OK: HTTP sweep bit-identical to the serial path, "
          "run-table percentiles match analysis.stats")
    return 0


def run_chaos(args, env) -> int:
    """The fig12 smoke sweep under the canned ``smoke-chaos`` fault plan.

    Timeline this drives (all faults deterministic, the once-only ones
    token-gated in ``<data_dir>/faults`` so they survive the restart):

    1. the client's first submit response is truncated on the wire; the
       jittered retry carries the same idempotency key and the server
       hands back the job the first attempt created (``deduplicated``);
    2. a worker kill breaks the process pool once; the chunk requeues
       into a fresh pool;
    3. a store-write OSError and a sqlite busy burst are absorbed by the
       retry layers;
    4. an injected ``os._exit`` kills the server mid-job (observed here
       as exit code :data:`~repro.service.faults.KILL_EXIT_CODE`);
    5. a restarted server on the same data dir resumes the job to
       ``done`` — and the rows must still be bit-identical to serial.
    """
    from repro.service.faults import KILL_EXIT_CODE, FaultPlan, FaultRule

    port = free_port()
    failures = []
    with tempfile.TemporaryDirectory() as data_dir:
        serve_args = ("--fault-plan", "smoke-chaos", "--trial-jobs", "2")
        proc = start_serve(port, data_dir, env, serve_args)
        second = None
        try:
            url = f"http://127.0.0.1:{port}"
            wait_for_health(ServiceClient(url), proc)

            # A client whose first submit response is lost on the wire:
            # the retry must deduplicate server-side via the key.
            client = ServiceClient(url, retries=2, retry_seed=0,
                                   fault_hook=FaultPlan([
                                       FaultRule(site="client.request",
                                                 key="/jobs",
                                                 action="truncate"),
                                   ]).fire)
            reply = client.submit_builder("fig12", scale="smoke",
                                          seed=args.seed,
                                          idempotency_key="chaos-submit-1")
            print(f"[submitted {reply['name']} as {reply['job_id']} "
                  f"(truncated once, deduplicated="
                  f"{reply.get('deduplicated')})]")
            if reply.get("deduplicated") is not True:
                failures.append(
                    "truncated submit retry did not deduplicate "
                    f"server-side: {reply}")

            # The injected os._exit fires at the second recorded trial;
            # wait for the server process to die mid-job.
            rc = proc.wait(timeout=args.timeout)
            print(f"[server killed mid-job with exit code {rc}]")
            if rc != KILL_EXIT_CODE:
                failures.append(
                    f"expected injected kill exit {KILL_EXIT_CODE}, "
                    f"got {rc}")

            # Restart on the same data dir (a fresh port: the old one can
            # linger while the kernel reaps the killed process's sockets):
            # the once-only faults are spent (token files), the open job
            # resumes and finishes.
            port2 = free_port()
            second = start_serve(port2, data_dir, env, serve_args)
            client = ServiceClient(f"http://127.0.0.1:{port2}")
            wait_for_health(client, second)
            deadline = time.monotonic() + args.timeout
            final = None
            for progress in client.tail(reply["job_id"], wait=10.0):
                print(f"  {progress['state']:<9} "
                      f"{progress['completed']}/{progress['total']}")
                final = progress
                if time.monotonic() > deadline:
                    failures.append("tail timed out after restart")
                    break

            jobs = client.jobs(limit=100)
            if len(jobs) != 1:
                failures.append(
                    f"expected exactly one job after the retried submit, "
                    f"got {len(jobs)}")

            spec, reference = serial_reference(args.seed)
            check_results(client, spec, reference, final, failures)
        finally:
            stop_serve(proc)
            if second is not None:
                stop_serve(second)

    if failures:
        print("\nCHAOS SMOKE FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nchaos smoke OK: truncated submit deduplicated, mid-job kill "
          "resumed to done, rows bit-identical to the serial path")
    return 0


def run_workers(args, env) -> int:
    """The fig12 smoke sweep executed by a two-daemon remote fleet under
    the ``worker-chaos`` transport plan, with the lease holder SIGKILLed
    mid-job.

    Proves the partition-tolerance story end to end, across real
    processes: the killed worker's lease is reaped by the (stood-down)
    local thread, the surviving daemon re-leases the job with a larger
    fencing token, the server-side cache sweep spares every trial the
    victim already uploaded, and the run-table ends bit-identical to
    ``SerialBackend`` with exactly one row per trial — despite dropped
    polls, delayed requests, a duplicated upload, a truncated upload
    response, dropped heartbeats, and one dead worker.
    """
    port = free_port()
    failures = []
    with tempfile.TemporaryDirectory() as data_dir:
        url = f"http://127.0.0.1:{port}"
        proc = start_serve(port, data_dir, env,
                           ("--lease", "5", "--workers", "1"))
        workers = {}
        try:
            client = ServiceClient(url)
            wait_for_health(client, proc)
            workers = {wid: start_work(url, wid, data_dir, env)
                       for wid in ("fleet-a", "fleet-b")}

            # Both daemons registered before the job exists, so the
            # server's local thread stands down to reaper duty.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                seen = {w["worker_id"] for w in client.workers()}
                if seen >= set(workers):
                    break
                time.sleep(0.2)
            else:
                failures.append(f"fleet never registered: {seen}")

            reply = client.submit_builder("fig12", scale="smoke",
                                          seed=args.seed)
            print(f"[submitted {reply['name']} as {reply['job_id']} "
                  f"({reply['trials']} trials) to a 2-worker fleet]")

            # SIGKILL whichever daemon uploads the first row — by
            # construction the current lease holder, caught mid-job.
            victim = None
            deadline = time.monotonic() + args.timeout
            while time.monotonic() < deadline:
                rows = client.runs(experiment=reply["name"], limit=5)["runs"]
                holders = [r["worker_id"] for r in rows if r["worker_id"]]
                if holders:
                    victim = holders[0]
                    break
                time.sleep(0.2)
            if victim is None:
                failures.append("no worker ever uploaded a row")
            else:
                workers[victim].kill()
                workers[victim].wait(timeout=15)
                print(f"[SIGKILLed lease holder {victim} mid-job]")

            final = None
            deadline = time.monotonic() + args.timeout
            for progress in client.tail(reply["job_id"], wait=10.0):
                print(f"  {progress['state']:<9} "
                      f"{progress['completed']}/{progress['total']} "
                      f"(attempt {progress.get('attempt')})")
                final = progress
                if time.monotonic() > deadline:
                    failures.append("tail timed out")
                    break

            spec, reference = serial_reference(args.seed)
            check_results(client, spec, reference, final, failures)

            rows = client.runs(experiment=spec.name,
                               limit=len(spec.trials) + 10)["runs"]
            contributed = {r["worker_id"] for r in rows}
            if None in contributed:
                failures.append(
                    "local execution ran trials while the fleet was live")
            if victim is not None and len(contributed - {None}) < 2:
                failures.append(
                    f"expected both workers in the run-table, "
                    f"got {sorted(c for c in contributed if c)}")
            if final is not None and final.get("attempt", 0) < 2:
                failures.append(
                    f"job finished on attempt {final.get('attempt')} — "
                    f"the kill did not interrupt a lease")
        finally:
            for w in workers.values():
                if w.poll() is None:
                    stop_serve(w)
            stop_serve(proc)

    if failures:
        print("\nWORKER FLEET SMOKE FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nworker fleet smoke OK: killed lease holder reaped, survivor "
          "finished from cache under transport chaos, rows bit-identical "
          "to the serial path with zero duplicates")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1, help="testbed seed")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall tail timeout in seconds")
    parser.add_argument("--chaos", action="store_true",
                        help="run under the smoke-chaos fault plan and "
                             "verify the recovery story")
    parser.add_argument("--workers", action="store_true",
                        help="run the sweep on a two-daemon remote fleet "
                             "under worker-chaos and SIGKILL the lease "
                             "holder mid-job")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")

    if args.chaos:
        return run_chaos(args, env)
    if args.workers:
        return run_workers(args, env)
    return run_smoke(args, env)


if __name__ == "__main__":
    sys.exit(main())
