"""CI service-smoke gate: the HTTP sweep path must match the serial path.

Boots ``python -m repro.cli serve`` as a real subprocess (ephemeral port,
throwaway data dir), submits the fig12 smoke sweep over HTTP, tails the
job to completion, and then checks the whole pipeline end to end:

* the job finishes ``done`` with every trial completed;
* the run-table holds exactly one row per trial of the sweep;
* every flow throughput served back over HTTP is **bit-identical** to
  running the same spec in-process through ``SerialBackend``;
* the run-table's percentile summary equals
  ``repro.analysis.stats.percentile`` over the same totals.

Usage::

    PYTHONPATH=src python benchmarks/check_service_smoke.py [--seed 1]

Exits non-zero (with a diff report) on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import stats  # noqa: E402
from repro.experiments.executor import SerialBackend  # noqa: E402
from repro.experiments.runners import (  # noqa: E402
    ExperimentScale,
    build_exposed_terminals,
)
from repro.net.testbed import Testbed  # noqa: E402
from repro.service.http_api import ServiceClient  # noqa: E402


def free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def wait_for_health(client: ServiceClient, proc, deadline_s: float = 30.0) -> None:
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early with {proc.returncode}")
        try:
            if client.health().get("ok"):
                return
        except Exception:
            time.sleep(0.2)
    raise RuntimeError("server did not become healthy in time")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1, help="testbed seed")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall tail timeout in seconds")
    args = parser.parse_args(argv)

    port = free_port()
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")

    failures = []
    with tempfile.TemporaryDirectory() as data_dir:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(port), "--data-dir", data_dir],
            env=env,
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            wait_for_health(client, proc)

            reply = client.submit_builder("fig12", scale="smoke",
                                          seed=args.seed)
            print(f"[submitted {reply['name']} as {reply['job_id']} "
                  f"({reply['trials']} trials)]")
            deadline = time.monotonic() + args.timeout
            final = None
            for progress in client.tail(reply["job_id"], wait=10.0):
                print(f"  {progress['state']:<9} "
                      f"{progress['completed']}/{progress['total']}")
                final = progress
                if time.monotonic() > deadline:
                    failures.append("tail timed out")
                    break

            # Serial reference, same testbed seed, in-process.
            testbed = Testbed(seed=args.seed)
            # Same builder call the server makes: the submitted seed feeds
            # both the testbed and the builder's scenario/run seed.
            spec = build_exposed_terminals(
                testbed, scale=ExperimentScale.smoke(), seed=args.seed)
            reference = {r.trial_id: r
                         for r in SerialBackend().run(testbed,
                                                      list(spec.trials))}

            if final is None or final["state"] != "done":
                failures.append(f"job did not finish done: {final}")
            elif final["completed"] != len(spec.trials):
                failures.append(
                    f"completed {final['completed']} != {len(spec.trials)}")

            runs = client.runs(experiment=spec.name,
                               limit=len(spec.trials) + 10,
                               with_payload=True)
            rows = runs["runs"]
            if runs["counts"].get(spec.name) != len(spec.trials):
                failures.append(
                    f"run-table rows {runs['counts'].get(spec.name)} != "
                    f"{len(spec.trials)} trials")

            for row in rows:
                ref = reference.get(row["trial_id"])
                if ref is None:
                    failures.append(f"unexpected row {row['trial_id']}")
                    continue
                got = {(s, d): v for s, d, v in row["payload"]["flow_mbps"]}
                want = ref.flow_mbps
                if got != want:
                    failures.append(
                        f"{row['trial_id']}: HTTP {got} != serial {want}")

            totals = [sum(r.flow_mbps.values()) for r in reference.values()]
            summary = client.summary(spec.name, "total_mbps", qs=(10, 50, 90))
            for q in (10, 50, 90):
                want = stats.percentile(totals, q)
                got = summary["percentiles"][str(float(q))]
                if got != want:
                    failures.append(f"p{q}: HTTP {got} != stats {want}")
            if summary["count"] != len(spec.trials):
                failures.append(
                    f"summary count {summary['count']} != {len(spec.trials)}")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()

    if failures:
        print("\nSERVICE SMOKE FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nservice smoke OK: HTTP sweep bit-identical to the serial path, "
          "run-table percentiles match analysis.stats")
    return 0


if __name__ == "__main__":
    sys.exit(main())
