"""Ablation: software-MAC latency profile (§4.1).

The prototype's 0.5-5 ms MAC<->PHY latency is why N_vpkt = 32 and
t_ackwait = 5 ms exist. A hardware CMAP (ACK after SIFS) can use small
virtual packets without losing throughput; the software profile cannot.
"""

from conftest import run_once

from repro.core.params import CmapParams, LatencyProfile
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_exposed_terminal_configs
from repro.network import cmap_factory


def _sweep(testbed, scale):
    configs = find_exposed_terminal_configs(testbed, scale.configs)
    protocols = {
        "soft_nvpkt32": cmap_factory(
            CmapParams(latency=LatencyProfile.paper_soft_mac())
        ),
        "soft_nvpkt4": cmap_factory(
            CmapParams(nvpkt=4, latency=LatencyProfile.paper_soft_mac())
        ),
        "hw_nvpkt32": cmap_factory(
            CmapParams(latency=LatencyProfile.hardware(), t_ackwait=1e-3)
        ),
        "hw_nvpkt4": cmap_factory(
            CmapParams(nvpkt=4, latency=LatencyProfile.hardware(), t_ackwait=1e-3)
        ),
    }
    return run_pair_cdf_experiment(
        "ablation_latency",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_ablation_latency_profile(benchmark, testbed, scale):
    result = run_once(benchmark, _sweep, testbed, scale)
    print()
    print(render_pair_cdf(result, "Ablation — MAC latency x virtual packet size"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # Small virtual packets are cheap on hardware but costly on the
    # software MAC — the amortisation argument behind N_vpkt = 32.
    soft_penalty = med["soft_nvpkt32"] / max(med["soft_nvpkt4"], 1e-9)
    hw_penalty = med["hw_nvpkt32"] / max(med["hw_nvpkt4"], 1e-9)
    assert soft_penalty > hw_penalty
