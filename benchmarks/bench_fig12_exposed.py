"""Fig. 12: exposed terminals.

Paper: with carrier sense, pairs get ~the single-link rate; CMAP achieves a
2x median gain, transmitting concurrently ~82 % of the time; a window of one
virtual packet drops the gain to ~1.5x.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_exposed_terminals


def test_fig12_exposed_terminals(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_exposed_terminals, testbed, scale, backend=backend)
    print()
    print(render_pair_cdf(result, "Fig. 12 — exposed terminals"))
    gain = result.gain_over("cmap", "cs_on")
    win1_gain = result.gain_over("cmap_win1", "cs_on")
    conc = sum(result.cmap_concurrency) / len(result.cmap_concurrency)
    benchmark.extra_info.update(
        cmap_gain=round(gain, 2),
        cmap_win1_gain=round(win1_gain, 2),
        mean_concurrency=round(conc, 2),
    )
    # Shape assertions (paper: 2x, 1.5x, 82 %).
    assert gain > 1.35
    assert win1_gain < gain
    assert conc > 0.5
