"""Fig. 20: exposed terminals at the 6, 12, and 18 Mb/s 802.11a rates.

Paper: CMAP continues to beat carrier sense at higher bit-rates, though the
number of exposed-terminal opportunities shrinks as the SINR needed to
decode rises (control frames always go at the base rate).
"""

from conftest import run_once

from repro.experiments.report import render_bitrate_sweep
from repro.experiments.runners import run_bitrate_sweep


def test_fig20_bitrate_sweep(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_bitrate_sweep, testbed, scale, backend=backend)
    print()
    print(render_bitrate_sweep(result))
    gains = {
        mbps: sub.gain_over("cmap", "cs_on") for mbps, sub in result.by_rate.items()
    }
    benchmark.extra_info["gains_by_rate"] = {m: round(g, 2) for m, g in gains.items()}
    # CMAP keeps an advantage at every rate measured.
    for mbps, gain in gains.items():
        assert gain > 1.0, f"no CMAP gain at {mbps} Mb/s ({gain:.2f}x)"
    # Raw throughput grows with the bit-rate.
    assert result.by_rate[18].median("cmap") > result.by_rate[6].median("cmap")
