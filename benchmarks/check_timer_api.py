"""CI gate: MAC code must use the named-timer API, not raw engine events.

PR 9 redesigned the timer/lifecycle API: MACs arm timers through
``self.timers`` (a :class:`repro.mac.base.TimerRegistry` of named,
handle-reusing timers drained by the final ``MacBase.stop``) and never
juggle raw :class:`repro.sim.engine.Event` objects themselves. This lint
walks the AST of every file under ``src/repro/mac/`` plus
``src/repro/core/cmap_mac.py`` and fails when one of them:

* constructs ``Event(...)`` directly;
* calls ``.schedule(...)`` or ``.schedule_at(...)`` (the legacy raw-event
  shims — fire-and-forget ``schedule_call``/``schedule_fanout`` remain
  allowed, they return nothing to juggle);
* calls ``.cancel(...)`` on anything other than the timer registry
  (``*.timers.cancel(name)``). The registry's own implementation inside
  ``TimerRegistry`` is the one sanctioned place handles are cancelled.

Usage::

    python benchmarks/check_timer_api.py
"""

from __future__ import annotations

import ast
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
MAC_DIR = os.path.join(REPO, "src", "repro", "mac")
EXTRA_FILES = [os.path.join(REPO, "src", "repro", "core", "cmap_mac.py")]

BANNED_SCHEDULERS = {"schedule", "schedule_at"}


def lint_file(path: str) -> list:
    """Return (line, message) violations for one file."""
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=path)

    violations = []

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self._class_stack: list = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self._class_stack.append(node.name)
            self.generic_visit(node)
            self._class_stack.pop()

        def visit_Call(self, node: ast.Call) -> None:
            func = node.func
            if isinstance(func, ast.Name) and func.id == "Event":
                violations.append(
                    (node.lineno, "constructs a raw engine Event")
                )
            if isinstance(func, ast.Attribute):
                if func.attr == "Event":
                    violations.append(
                        (node.lineno, "constructs a raw engine Event")
                    )
                elif func.attr in BANNED_SCHEDULERS:
                    violations.append(
                        (
                            node.lineno,
                            f"calls .{func.attr}(...) — use "
                            "self.timers.arm(name, ...) (or schedule_call "
                            "for fire-and-forget)",
                        )
                    )
                elif (
                    func.attr == "cancel"
                    and "TimerRegistry" not in self._class_stack
                ):
                    receiver = func.value
                    timers_receiver = (
                        isinstance(receiver, ast.Attribute)
                        and receiver.attr == "timers"
                    )
                    if not timers_receiver:
                        violations.append(
                            (
                                node.lineno,
                                "cancels a raw handle — use "
                                "self.timers.cancel(name)",
                            )
                        )
            self.generic_visit(node)

    Visitor().visit(tree)
    return violations


def target_files() -> list:
    files = []
    for root, _dirs, names in os.walk(MAC_DIR):
        for name in sorted(names):
            if name.endswith(".py"):
                files.append(os.path.join(root, name))
    files.extend(EXTRA_FILES)
    return files


def main() -> int:
    failed = False
    checked = 0
    for path in target_files():
        checked += 1
        rel = os.path.relpath(path, REPO)
        for line, message in lint_file(path):
            failed = True
            print(f"{rel}:{line}: {message}")
    if failed:
        print("timer API lint FAILED")
        return 1
    print(f"timer API lint ok ({checked} files, zero raw-event timer sites)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
