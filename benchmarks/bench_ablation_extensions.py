"""Ablation: the paper-described optional extensions (§3.1, §5.6).

* ``replicate_ht_in_data`` — copy header/trailer info into every data frame
  (the §5.6 robustness fix for receivers that miss delimiters under load);
* ``piggyback_ilist`` — carry interferer lists on ACKs in addition to the
  periodic broadcast (§3.1 suggests piggy-backing on control messages);
* ``two_hop_ilist`` — relay interferer lists one extra hop for asymmetric
  links.

Run on in-range pairs where the conflict map actually matters.
"""

from conftest import run_once

from repro.core.params import CmapParams
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_inrange_configs
from repro.network import cmap_factory


def _sweep(testbed, scale):
    configs = find_inrange_configs(testbed, scale.configs)
    protocols = {
        "baseline": cmap_factory(CmapParams()),
        "replicate_ht": cmap_factory(CmapParams(replicate_ht_in_data=True)),
        "piggyback": cmap_factory(CmapParams(piggyback_ilist=True)),
        "two_hop": cmap_factory(CmapParams(two_hop_ilist=True)),
    }
    return run_pair_cdf_experiment(
        "ablation_extensions",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_ablation_extensions(benchmark, testbed, scale):
    result = run_once(benchmark, _sweep, testbed, scale)
    print()
    print(render_pair_cdf(result, "Ablation — optional extensions (in-range pairs)"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # Extensions are robustness features: none may tank median throughput.
    for name, value in med.items():
        assert value > 0.7 * med["baseline"], f"{name} collapsed: {value:.2f}"
