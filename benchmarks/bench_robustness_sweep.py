"""Robustness: the exposed-terminal gain across channel-model assumptions.

The paper measured one building. We vary the simulated world — path-loss
exponent and LOS fraction — and re-run the Fig. 12 experiment at each grid
point (re-selecting configurations under the same constraints). The claim
that survives: wherever exposed-terminal configurations exist at all, CMAP
beats carrier sense on them.
"""

from conftest import run_once

from repro.experiments.runners import ExperimentScale
from repro.experiments.sweeps import render_sweep, sweep_testbed_parameters


def _sweep(scale):
    small = ExperimentScale(
        configs=min(3, scale.configs),
        duration=min(8.0, scale.duration),
        warmup=min(3.0, scale.warmup),
    )
    grid = {
        "path_loss_exponent": [3.0, 3.3, 3.6],
        "p_los": [0.3, 0.45, 0.6],
    }
    return sweep_testbed_parameters(grid, small)


def test_robustness_sweep(benchmark, scale):
    points = run_once(benchmark, _sweep, scale)
    print()
    print("Exposed-terminal gain vs channel assumptions (Fig. 12 re-run)")
    print(render_sweep(points))
    usable = [p for p in points if p.error is None and p.configs_found > 0]
    benchmark.extra_info["grid_points"] = len(points)
    benchmark.extra_info["usable_points"] = len(usable)
    assert len(usable) >= len(points) // 2
    winning = sum(1 for p in usable if p.gain > 1.2)
    benchmark.extra_info["winning_points"] = winning
    # The headline must hold across (almost) the whole grid.
    assert winning >= len(usable) - 1
