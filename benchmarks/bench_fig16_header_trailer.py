"""Fig. 16: probability of receiving a virtual packet's header vs either
header or trailer, from the §5.3 (in range) and §5.5 (out of range) runs.

Paper: P(header or trailer) dominates P(header) in both experiments; the
trailer's benefit is largest when senders are out of range and collide
persistently; for in-range equal-size packets the either-probability is ~1.
"""

from conftest import run_once

from repro.analysis.stats import summarize
from repro.experiments.report import render_ht_cdf
from repro.experiments.runners import run_header_trailer_cdf


def test_fig16_header_or_trailer(benchmark, testbed, scale, backend):
    result = run_once(
        benchmark, run_header_trailer_cdf, testbed, scale, backend=backend
    )
    print()
    print(render_ht_cdf(result))
    either_med = summarize(result.inrange_either).median
    header_med = summarize(result.inrange_header).median
    benchmark.extra_info.update(
        inrange_either_median=round(either_med, 3),
        inrange_header_median=round(header_med, 3),
    )
    # Either >= header by construction; in-range either should be near 1.
    assert either_med >= header_med
    assert either_med > 0.85
    if result.outofrange_either:
        oor_e = summarize(result.outofrange_either).median
        oor_h = summarize(result.outofrange_header).median
        assert oor_e >= oor_h
