"""Fig. 14 / §5.4: how bad are hidden interferers?

Paper: over 500 random (S, R, I) triples, only ~8 % of points fall in the
bottom-left quadrant (interferer halves throughput yet is inaudible), and
the computed expected CMAP throughput under hidden interferers is 0.896 —
i.e. ~10 % expected damage.
"""

from conftest import run_once

from repro.experiments.report import render_hidden_interferer
from repro.experiments.runners import run_hidden_interferer_scatter


def test_fig14_hidden_interferers(benchmark, testbed, scale, backend):
    result = run_once(
        benchmark, run_hidden_interferer_scatter, testbed, scale, backend=backend
    )
    print()
    print(render_hidden_interferer(result))
    benchmark.extra_info.update(
        bottom_left=round(result.bottom_left_fraction, 3),
        expected_cmap=round(result.expected_cmap_throughput, 3),
    )
    # Hidden interferers are rare and their expected damage modest.
    assert result.bottom_left_fraction < 0.30
    assert result.expected_cmap_throughput > 0.70
