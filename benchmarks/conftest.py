"""Shared fixtures for the figure-regeneration benchmarks.

Scale control: set ``REPRO_SCALE=quick`` (minutes) or ``REPRO_SCALE=paper``
(paper-equivalent sample sizes, hours) — the default is a small scale that
still preserves each figure's qualitative shape.

Parallelism: set ``REPRO_JOBS=N`` to fan each figure's independent trials
out over N worker processes through the shared experiment executor. Results
are bit-identical to serial, so the printed tables (and shape assertions)
do not change — only wall time does.

Every benchmark prints the same rows/series its paper figure reports; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them, and compare
against the paper-vs-measured record in EXPERIMENTS.md.
"""

import os
import time

import pytest

from repro import perf
from repro.experiments.executor import make_backend
from repro.experiments.runners import ExperimentScale
from repro.net.testbed import Testbed


def bench_scale() -> ExperimentScale:
    mode = os.environ.get("REPRO_SCALE", "bench")
    if mode == "paper":
        return ExperimentScale.paper()
    if mode == "quick":
        return ExperimentScale.quick()
    # Default: small but non-trivial; minutes for the whole suite. The mesh
    # experiment needs several topologies for its aggregate to stabilise.
    return ExperimentScale(
        configs=5,
        duration=8.0,
        warmup=3.0,
        triples=24,
        trials_per_n=1,
        mesh_topologies=6,
        ht_configs_per_n=2,
    )


@pytest.fixture(scope="session", autouse=True)
def bench_trajectory():
    """Optionally record a ``BENCH_*.json`` for the whole benchmark session.

    Set ``REPRO_BENCH_DIR=<dir>`` to capture aggregate events/sec over every
    figure this session regenerates (meaningful for serial runs only —
    ``REPRO_JOBS`` workers execute their events where the recorder cannot
    see them).
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if not out_dir:
        yield
        return
    with perf.recording() as recorder:
        t0 = time.perf_counter()
        yield
        wall = time.perf_counter() - t0
    summary = perf.summarize_recorder("pytest_benchmarks", recorder, wall)
    payload = perf.bench_payload(
        [summary], os.environ.get("REPRO_SCALE", "bench"), seed=1
    )
    path = perf.write_bench_file(payload, out_dir)
    print(f"\n[bench trajectory written to {path}]")


@pytest.fixture(scope="session")
def testbed():
    return Testbed(seed=1)


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def backend():
    """Trial-execution backend: serial unless REPRO_JOBS=N asks for a pool."""
    return make_backend(int(os.environ.get("REPRO_JOBS", "1")))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
