"""The §6 related-work line-up, quantified on exposed terminals.

Five channel-access schemes on the same Fig. 11(a) configurations:

* plain CSMA (the status quo);
* RTS/CTS virtual carrier sense (MACA [7]) — fixes hidden, not exposed;
* IA-MAC [3] — SINR margins in CTS; helps only overhearers in CTS range;
* E-CSMA [4] — receiver-feedback CSMA, identity-blind;
* adaptive CS-threshold tuning ([8, 21, 22] family) — one knob for two
  failure modes;
* CMAP.

The paper's §6 argument is that each prior scheme either misses exposed
opportunities or trades them against hidden-terminal losses; CMAP should
lead this table.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_exposed_terminal_configs
from repro.mac.cs_tuning import CsTuningParams, cs_tuning_factory
from repro.mac.ecsma import ecsma_factory
from repro.mac.iamac import iamac_factory
from repro.mac.rtscts import rtscts_factory
from repro.network import cmap_factory, dcf_factory


def _lineup(testbed, scale):
    configs = find_exposed_terminal_configs(testbed, scale.configs)
    protocols = {
        "csma": dcf_factory(True, True),
        "rts_cts": rtscts_factory(),
        "ia_mac": iamac_factory(),
        "ecsma": ecsma_factory(),
        "cs_tuning": cs_tuning_factory(CsTuningParams(epoch=0.3)),
        "cmap": cmap_factory(),
    }
    return run_pair_cdf_experiment(
        "related_work",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_related_work_lineup(benchmark, testbed, scale):
    result = run_once(benchmark, _lineup, testbed, scale)
    print()
    print(render_pair_cdf(result, "Related work (§6) — exposed terminals"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # CMAP leads the table; RTS/CTS cannot beat plain CSMA here.
    assert med["cmap"] >= max(med.values()) * 0.95
    assert med["rts_cts"] <= med["csma"] * 1.1
