"""Fig. 13: two senders in range of each other, cross links unconstrained.

Paper: ~15 % of pairs conflict (blast mode hurts them, CMAP defers and
tracks CS-on); ~18 % are better off concurrent (CMAP tracks CS-off); CS-off
with ACKs underperforms CMAP on concurrent pairs because stop-and-wait is
fragile to ACK loss.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_inrange_senders


def test_fig13_inrange_senders(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_inrange_senders, testbed, scale, backend=backend)
    print()
    print(render_pair_cdf(result, "Fig. 13 — senders in range"))
    benchmark.extra_info["cmap_median"] = round(result.median("cmap"), 2)
    benchmark.extra_info["cs_on_median"] = round(result.median("cs_on"), 2)
    # CMAP must not fall below the status quo in aggregate...
    assert result.median("cmap") > 0.85 * result.median("cs_on")
    # ... and its worst configuration must not collapse the way blast can.
    assert min(result.totals["cmap"]) > 0.5 * min(result.totals["cs_on"])
