"""Ablation: the loss-rate backoff (§3.4, §5.5).

With the defer mechanism blinded (hidden terminals), the backoff is what
keeps CMAP from degrading below the status quo. Disabling it (threshold 1.0
means no loss report can ever trigger a backoff) should hurt hidden-terminal
topologies while leaving exposed ones roughly alone.
"""

from conftest import run_once

from repro.core.params import CmapParams
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_hidden_terminal_configs
from repro.network import cmap_factory


def _sweep(testbed, scale):
    configs = find_hidden_terminal_configs(testbed, scale.configs)
    protocols = {
        "cmap": cmap_factory(CmapParams()),
        "cmap_no_backoff": cmap_factory(CmapParams(l_backoff=1.0)),
    }
    return run_pair_cdf_experiment(
        "ablation_backoff",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_ablation_backoff_hidden_terminals(benchmark, testbed, scale):
    result = run_once(benchmark, _sweep, testbed, scale)
    print()
    print(render_pair_cdf(result, "Ablation — loss backoff (hidden terminals)"))
    med_on = result.median("cmap")
    med_off = result.median("cmap_no_backoff")
    benchmark.extra_info["with_backoff"] = round(med_on, 2)
    benchmark.extra_info["without_backoff"] = round(med_off, 2)
    # Backoff must not *hurt*; under capture-heavy channels the totals can
    # be close, so require parity rather than a strict win.
    assert med_on > 0.8 * med_off
