"""§5.7: two-hop content dissemination mesh (Fig. 11(d)).

Paper: CMAP achieves 52 % higher aggregate throughput than 802.11 with
carrier sense, because the forwarders A_i are frequently exposed terminals
during the concurrent A_i -> B_i transfers.
"""

from conftest import run_once

from repro.experiments.report import render_mesh
from repro.experiments.runners import run_mesh_dissemination


def test_mesh_dissemination(benchmark, testbed, scale, backend):
    result = run_once(
        benchmark,
        run_mesh_dissemination,
        testbed,
        scale,
        include_extensions=True,
        backend=backend,
    )
    print()
    print(render_mesh(result))
    gain = result.gain("cmap", "cs_on")
    ext_gain = result.gain("cmap_ext", "cs_on")
    benchmark.extra_info["gain"] = round(gain, 2)
    benchmark.extra_info["gain_with_extensions"] = round(ext_gain, 2)
    assert gain > 1.0, f"CMAP mesh gain only {gain:.2f}x (paper: 1.52x)"
    assert ext_gain > 1.0
