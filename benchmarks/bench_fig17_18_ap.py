"""Figs. 17 and 18: access-point topologies with N = 3..6 concurrent flows.

Paper: CMAP improves aggregate throughput over the status quo by 21 %
(N = 3) to 47 % (N = 4), and the median per-sender throughput by 1.8x
(2.5 -> 4.6 Mb/s), because senders in adjacent cells are often exposed
terminals.
"""

from conftest import run_once

from repro.analysis.stats import Cdf
from repro.experiments.report import render_ap
from repro.experiments.runners import run_ap_topology

_cache = {}


def _ap_result(testbed, scale, backend):
    if "result" not in _cache:
        _cache["result"] = run_ap_topology(testbed, scale, backend=backend)
    return _cache["result"]


def test_fig17_ap_aggregate(benchmark, testbed, scale, backend):
    result = run_once(benchmark, _ap_result, testbed, scale, backend)
    print()
    print(render_ap(result))
    gains = {}
    for n, per_proto in result.aggregate.items():
        cs = sum(per_proto["cs_on"]) / len(per_proto["cs_on"])
        cm = sum(per_proto["cmap"]) / len(per_proto["cmap"])
        gains[n] = cm / cs if cs else float("inf")
    benchmark.extra_info["gains_by_n"] = {n: round(g, 2) for n, g in gains.items()}
    # Paper: +21 % .. +47 %. Require a positive gain for most N.
    positive = sum(1 for g in gains.values() if g > 1.05)
    assert positive >= len(gains) - 1


def test_fig18_ap_per_sender(benchmark, testbed, scale, backend):
    result = run_once(benchmark, _ap_result, testbed, scale, backend)
    cmap_med = Cdf(result.per_sender["cmap"]).median
    cs_med = Cdf(result.per_sender["cs_on"]).median
    print()
    print(
        f"Fig. 18 — per-sender medians: cs_on {cs_med:.2f} Mb/s, "
        f"cmap {cmap_med:.2f} Mb/s, ratio {cmap_med / max(cs_med, 1e-9):.2f}x "
        "(paper: 2.5 vs 4.6, 1.8x)"
    )
    benchmark.extra_info["cmap_median"] = round(cmap_med, 2)
    benchmark.extra_info["cs_on_median"] = round(cs_med, 2)
    assert cmap_med > cs_med
