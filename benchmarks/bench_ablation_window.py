"""Ablation: send-window size (§3.3, §5.2).

Paper: with a window of one virtual packet, ACK collisions at exposed
senders cause spurious timeouts and retransmissions, cutting the exposed-
terminal gain from ~2x to ~1.5x. We sweep N_window in {1, 2, 4, 8}.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_exposed_terminal_configs
from repro.experiments.spec import MacSpec


def _sweep(testbed, scale, backend):
    configs = find_exposed_terminal_configs(testbed, scale.configs)
    protocols = {f"cmap_w{w}": MacSpec.of("cmap", nwindow=w) for w in (1, 2, 4, 8)}
    return run_pair_cdf_experiment(
        "ablation_window",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
        backend=backend,
    )


def test_ablation_window_size(benchmark, testbed, scale, backend):
    result = run_once(benchmark, _sweep, testbed, scale, backend)
    print()
    print(render_pair_cdf(result, "Ablation — send window size (exposed pairs)"))
    medians = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in medians.items()}
    # The full window must beat the stop-and-wait-like window of one.
    assert medians["cmap_w8"] > medians["cmap_w1"]
