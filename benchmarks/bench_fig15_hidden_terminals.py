"""Fig. 15: hidden terminals (senders out of range, receivers hear both).

Paper: CMAP and 802.11 (CS on or off) perform comparably — CMAP's
loss-rate backoff prevents degradation when the defer mechanism cannot
work — and there is little weight above the single-pair throughput.
"""

from conftest import run_once

from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_hidden_terminals


def test_fig15_hidden_terminals(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_hidden_terminals, testbed, scale, backend=backend)
    print()
    print(render_pair_cdf(result, "Fig. 15 — hidden terminals"))
    benchmark.extra_info["cmap_median"] = round(result.median("cmap"), 2)
    benchmark.extra_info["cs_on_median"] = round(result.median("cs_on"), 2)
    assert result.median("cmap") > 0.75 * result.median("cs_on")
    assert result.median("cmap") < 8.5  # no weight above single-pair rate
