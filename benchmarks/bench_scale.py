"""Scale benchmark: events/s and per-event cost vs generated world size.

Runs one saturated CMAP trial per world size N (constant density, all N
nodes attached) with the topology library's default culling floors, and —
for contrast — an exhaustive-fan-out run of the same worlds with culling
disabled. The headline acceptance number is the per-event cost ratio
between the largest and smallest culled worlds: with RSS-cutoff culling
the per-frame receiver set is bounded by neighborhood density, so the
ratio stays within 2x (without culling, every frame pays O(N)).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --out benchmarks/BENCH_pr4_scale.json

Not a pytest file on purpose: one run is a trajectory point, written as a
BENCH_*.json like the other perf records (see repro.perf).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf  # noqa: E402
from repro.experiments.executor import run_trial  # noqa: E402
from repro.experiments.spec import MacSpec, TrialSpec  # noqa: E402
from repro.experiments.topologies import (  # noqa: E402
    build_topology,
    default_flows_n,
)


def bench_case(
    topology: str,
    n: int,
    duration: float,
    warmup: float,
    seed: int,
    culled: bool,
) -> dict:
    """Time one world; returns a JSON-ready record."""
    topo = build_topology(topology, n)
    if not culled:
        topo = replace(topo, delivery_floor_dbm=None, interference_floor_dbm=None)
    t0 = time.perf_counter()
    testbed = topo.build(seed=seed)
    setup_seconds = time.perf_counter() - t0
    flows = topo.flows(testbed, default_flows_n(topo.n), 0)
    mode = "culled" if culled else "exhaustive"
    spec = TrialSpec(
        trial_id=f"bench_scale/{topo.label}/{mode}",
        nodes=tuple(sorted(testbed.positions)),
        flows=flows,
        mac=MacSpec.of("cmap"),
        run_seed=0,
        duration=duration,
        warmup=warmup,
        metrics=("fanout",),
        delivery_floor_dbm=topo.delivery_floor_dbm,
        interference_floor_dbm=topo.interference_floor_dbm,
    )
    with perf.recording() as recorder:
        t0 = time.perf_counter()
        result = run_trial(testbed, spec)
        wall = time.perf_counter() - t0
    events = recorder.events
    run_wall = recorder.run_wall_seconds
    fanout = result.metrics["fanout"]
    return {
        "topology": topo.kind,
        "n": topo.n,
        "flows": len(flows),
        "culled": culled,
        "sim_seconds": duration,
        "setup_seconds": round(setup_seconds, 3),
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "us_per_event": round(1e6 * run_wall / events, 4) if events else 0.0,
        "mean_fanout_delivered": round(fanout["mean_delivered"], 2),
        "mean_fanout_interference_only": round(fanout["mean_interference_only"], 2),
        "aggregate_mbps": round(sum(result.flow_mbps.values()), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ns",
        default="25,100,400",
        help="comma-separated world sizes (default 25,100,400)",
    )
    parser.add_argument(
        "--topology",
        default="uniform",
        help="topology family (default uniform)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=3.0,
        help="simulated seconds per culled run (default 3)",
    )
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--skip-exhaustive",
        action="store_true",
        help="skip the culling-disabled contrast runs",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: timestamped BENCH_scale_*.json in cwd)",
    )
    args = parser.parse_args(argv)

    ns = sorted(int(v) for v in args.ns.split(",") if v.strip())
    cases = []
    for n in ns:
        for culled in (True,) if args.skip_exhaustive else (True, False):
            # The exhaustive contrast runs half the sim time: its per-event
            # metrics are rates, and O(N) fan-out makes full runs slow.
            duration = args.duration if culled else max(1.0, args.duration / 2)
            warmup = min(args.warmup, duration / 2)
            case = bench_case(args.topology, n, duration, warmup, args.seed, culled)
            cases.append(case)
            mode = "culled" if culled else "exhaustive"
            fanout_str = (
                f"{case['mean_fanout_delivered']}+"
                f"{case['mean_fanout_interference_only']}/{case['n'] - 1}"
            )
            line = (
                f"N={case['n']:<4} {mode:<11} wall={case['wall_seconds']:>7.2f}s "
                f"events={case['events']:>9} ev/s={case['events_per_sec']:>9.0f} "
                f"us/ev={case['us_per_event']:>6.2f} fanout={fanout_str}"
            )
            print(line)

    culled_cases = {c["n"]: c for c in cases if c["culled"]}
    lo, hi = min(culled_cases), max(culled_cases)
    if not (culled_cases[lo]["events"] and culled_cases[hi]["events"]):
        # A run that measured nothing must not report the acceptance
        # criterion as met.
        print("ERROR: a culled case recorded zero events; nothing measured")
        return 2
    ratio = culled_cases[hi]["us_per_event"] / culled_cases[lo]["us_per_event"]
    payload = {
        "schema": perf.BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kind": "scale",
        "topology": args.topology,
        "seed": args.seed,
        "cases": cases,
        "per_event_cost_ratio_largest_vs_smallest": round(ratio, 3),
        "acceptance": {
            "criterion": "culled per-event cost at max N within 2x of min N",
            "ratio": round(ratio, 3),
            "passes": ratio <= 2.0,
        },
    }
    out = args.out
    if out is None:
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        out = f"BENCH_scale_{stamp}.json"
    os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    verdict = "PASS" if ratio <= 2.0 else "FAIL"
    print(f"per-event cost ratio N={hi} vs N={lo}: {ratio:.2f}x ({verdict} <= 2.0)")
    print(f"[wrote {out}]")
    return 0 if ratio <= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
