"""Ablation: the interference loss threshold l_interf (§3.1).

The paper argues l_interf must be 0.5: below it, mildly-interfering pairs
get serialized although concurrency nets more throughput; far above it,
real conflicts are never entered into the map. We sweep {0.1, 0.5, 0.9} on
in-range sender pairs (the population containing both conflicting and
exposed configurations).
"""

from conftest import run_once

from repro.core.params import CmapParams
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import find_inrange_configs
from repro.network import cmap_factory


def _sweep(testbed, scale):
    configs = find_inrange_configs(testbed, scale.configs)
    protocols = {
        f"cmap_li{int(t * 100):02d}": cmap_factory(CmapParams(l_interf=t))
        for t in (0.1, 0.5, 0.9)
    }
    return run_pair_cdf_experiment(
        "ablation_linterf",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_ablation_l_interf(benchmark, testbed, scale):
    result = run_once(benchmark, _sweep, testbed, scale)
    print()
    print(render_pair_cdf(result, "Ablation — l_interf threshold (in-range pairs)"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # The paper's 0.5 should be within a whisker of the best choice.
    best = max(med.values())
    assert med["cmap_li50"] > 0.8 * best
