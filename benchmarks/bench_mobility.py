"""Dynamic world: mobility and churn sweeps (paper §3.4 adaptation).

The map must keep up with a changing geometry: a walking sender flips
conflict relations on the timescale of its walk, and a churning sender
dissolves and re-forms them wholesale. The static (0 m/s / no-churn) column
doubles as a regression anchor: it runs the exact static fast path.
"""

from conftest import run_once

from repro.experiments.report import render_churn, render_mobility
from repro.experiments.runners import run_churn_sweep, run_mobility_sweep


def test_mobility_sweep(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_mobility_sweep, testbed, scale, backend=backend)
    print()
    print(render_mobility(result))
    static_cmap = result.median(result.speeds[0], "cmap")
    benchmark.extra_info.update(
        static_cmap_median=round(static_cmap, 2),
        fastest_cmap_median=round(result.median(result.speeds[-1], "cmap"), 2),
    )
    # Every speed must produce live traffic under both protocols.
    for speed in result.speeds:
        assert result.median(speed, "cmap") > 0.0
        assert result.median(speed, "cs_on") > 0.0


def test_churn_sweep(benchmark, testbed, scale, backend):
    result = run_once(benchmark, run_churn_sweep, testbed, scale, backend=backend)
    print()
    print(render_churn(result))
    no_churn = result.median(result.periods[0], "cmap")
    benchmark.extra_info.update(no_churn_cmap_median=round(no_churn, 2))
    for period in result.periods:
        assert result.median(period, "cmap") > 0.0
        assert result.median(period, "cs_on") > 0.0
