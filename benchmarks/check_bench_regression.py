"""CI bench-regression gate: fail when events/s drops below the baseline.

Compares the figures in a freshly emitted BENCH_*.json (from
``python -m repro.cli bench``) against a committed baseline and exits
non-zero when any figure's events/s falls more than ``--tolerance`` below
it. The tolerance absorbs hosted-runner speed variance (see the workflow
comment where the 15% figure is documented); a real hot-path regression
shows up as a much larger, persistent drop.

Usage::

    python benchmarks/check_bench_regression.py \
        --bench "bench-out/BENCH_*.json" \
        --baseline benchmarks/BENCH_baseline_ci.json \
        --tolerance 0.15

``--bench`` accepts a glob; the newest match is checked.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        required=True,
        help="emitted BENCH file (glob ok; newest match wins)",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed baseline BENCH file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional events/s drop (default 0.15)",
    )
    args = parser.parse_args(argv)

    matches = sorted(glob.glob(args.bench), key=os.path.getmtime)
    if not matches:
        print(f"ERROR: no bench file matches {args.bench!r}")
        return 2
    bench = load(matches[-1])
    baseline = load(args.baseline)

    # Perf numbers are only comparable within one kernel backend (the
    # ``scalar`` reference backend is deliberately slower than the
    # default); refuse to gate across backends. Baselines recorded before
    # the field existed compare as "python" (the default backend).
    bench_backend = bench.get("kernel_backend", "python")
    base_backend = baseline.get("kernel_backend", "python")
    if bench_backend != base_backend:
        print(
            f"ERROR: bench ran with kernel backend {bench_backend!r} but "
            f"the baseline was recorded with {base_backend!r}; cross-backend "
            f"events/s comparisons are meaningless. Re-run the bench with "
            f"the baseline's backend or re-record the baseline."
        )
        return 2

    base_figures = baseline.get("figures", {})
    cur_figures = bench.get("figures", {})
    if not base_figures:
        print(f"ERROR: baseline {args.baseline} has no figures")
        return 2

    failed = False
    print(f"bench file: {matches[-1]}")
    recorded = baseline.get("created_utc", "?")
    print(f"baseline  : {args.baseline} (recorded {recorded})")
    header = (
        f"{'figure':<12} {'baseline ev/s':>14} {'current ev/s':>14} "
        f"{'ratio':>7}  verdict"
    )
    print(header)
    for name, base in sorted(base_figures.items()):
        base_eps = base.get("events_per_sec", 0.0)
        cur = cur_figures.get(name)
        if cur is None:
            print(f"{name:<12} {base_eps:>14.0f} {'missing':>14}  FAIL (not run)")
            failed = True
            continue
        cur_eps = cur.get("events_per_sec", 0.0)
        ratio = cur_eps / base_eps if base_eps else 0.0
        ok = ratio >= 1.0 - args.tolerance
        verdict = "ok" if ok else "FAIL"
        print(
            f"{name:<12} {base_eps:>14.0f} {cur_eps:>14.0f} "
            f"{ratio:>6.2f}x  {verdict}"
        )
        if not ok:
            failed = True

    if failed:
        advice = (
            f"\nREGRESSION: events/s dropped more than {args.tolerance:.0%} "
            f"below baseline.\nIf the drop is intended (e.g. a fidelity "
            f"fix), re-record the baseline with:\n"
            f"  python -m repro.cli bench --scale smoke --repeat 2 "
            f"--figures fig12,mobility \\\n"
            f"    --write-baseline --baseline {args.baseline}"
        )
        print(advice)
        return 1
    print("\nno bench regression detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
