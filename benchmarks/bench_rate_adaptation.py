"""Rate adaptation around the conflict map (§3.5's sketch, quantified).

Line-up, on in-range sender pairs (the population with real conflicts) with
data at 18 Mb/s:

* plain DCF fixed at 18 Mb/s;
* ARF (the standard adaptation baseline — known to misread collision losses
  as channel losses and throttle);
* CMAP fixed at 18 Mb/s;
* CMAP with the rate-aware map + defer-or-downshift policy.

The paper predicts a conflict-map-driven chooser "would amplify CMAP's
gains"; here we check the policy engages (downshifts happen) and never
collapses relative to fixed-rate CMAP.
"""

from conftest import run_once

from repro.core.params import CmapParams
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import run_pair_cdf_experiment
from repro.experiments.scenarios import (
    filter_configs_by_rate,
    find_inrange_configs,
)
from repro.mac.autorate import ArfParams, arf_factory
from repro.mac.dcf import DcfParams
from repro.network import cmap_factory, dcf_factory
from repro.phy.modulation import RATES, RATE_6M


def _sweep(testbed, scale):
    # Oversample, then keep configs whose data links still decode at 18.
    candidates = find_inrange_configs(testbed, scale.configs * 6)
    configs = filter_configs_by_rate(testbed, candidates, 18)[: scale.configs]
    rate18 = RATES[18]
    protocols = {
        "dcf@18": dcf_factory(
            params=DcfParams(carrier_sense=True, acks=True, data_rate=rate18)
        ),
        "arf": arf_factory(ArfParams(carrier_sense=True, acks=True)),
        "cmap@18": cmap_factory(CmapParams(data_rate=rate18, control_rate=RATE_6M)),
        "cmap@18+adapt": cmap_factory(
            CmapParams(
                data_rate=rate18,
                control_rate=RATE_6M,
                rate_aware_map=True,
                adapt_rate_on_defer=True,
            )
        ),
    }
    return run_pair_cdf_experiment(
        "rate_adaptation",
        testbed,
        configs,
        protocols,
        scale,
        track_cmap_concurrency=False,
    )


def test_rate_adaptation(benchmark, testbed, scale):
    result = run_once(benchmark, _sweep, testbed, scale)
    print()
    print(render_pair_cdf(result, "Rate adaptation — in-range pairs @ 18 Mb/s"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # The adaptive map policy must not lose to fixed-rate CMAP...
    assert med["cmap@18+adapt"] > 0.8 * med["cmap@18"]
    # ... and CMAP variants must beat ARF, which throttles on collisions.
    assert max(med["cmap@18"], med["cmap@18+adapt"]) > med["arf"]
