"""Online vs offline conflict maps (§6: RTSS/CTSS [11], interference maps
[13, 14]).

Three CMAP variants on in-range sender pairs:

* **online** — plain CMAP: learns from losses, pays a convergence tax;
* **offline** — defer tables preloaded from an idealised O(n²) measurement
  campaign, learning effectively frozen (RTSS/CTSS-style);
* **warm-start** — preloaded *and* still learning (entries age normally).

The §6 trade: offline knowledge removes the transient losses but cannot
track change and presumes the traffic matrix; online learning needs neither.
On a static channel the three should converge to similar steady-state
throughput — the offline variant's edge is confined to the warmup the paper
also acknowledges ("flows under CMAP may experience transient packet loss
before conflict map entries converge", §7).
"""

from conftest import run_once

from repro.core.offline_map import preload_offline_map
from repro.experiments.report import render_pair_cdf
from repro.experiments.runners import PairCdfResult
from repro.experiments.scenarios import find_inrange_configs
from repro.network import Network, cmap_factory


def _run(testbed, scale):
    configs = find_inrange_configs(testbed, scale.configs)
    variants = ("online", "offline", "warm_start")
    totals = {v: [] for v in variants}
    per_flow = {v: [] for v in variants}
    for idx, config in enumerate(configs):
        for variant in variants:
            net = Network(testbed, run_seed=idx)
            for n in config.nodes:
                net.add_node(n, cmap_factory())
            if variant != "online":
                preload_offline_map(
                    net, list(config.flows), freeze=(variant == "offline")
                )
            for s, r in config.flows:
                net.add_saturated_flow(s, r)
            res = net.run(duration=scale.duration, warmup=scale.warmup)
            f1 = res.flow_mbps(config.s1, config.r1)
            f2 = res.flow_mbps(config.s2, config.r2)
            totals[variant].append(f1 + f2)
            per_flow[variant].append((f1, f2))
    return PairCdfResult("offline_map", configs, totals, per_flow)


def test_offline_vs_online_map(benchmark, testbed, scale):
    result = run_once(benchmark, _run, testbed, scale)
    print()
    print(render_pair_cdf(result, "Conflict map: online vs offline (in-range pairs)"))
    med = {name: result.median(name) for name in result.totals}
    benchmark.extra_info["medians"] = {k: round(v, 2) for k, v in med.items()}
    # All three variants must land in the same steady-state band.
    assert min(med.values()) > 0.6 * max(med.values())
