"""Fig. 19: header-or-trailer reception rate vs number of concurrent senders.

Paper: the *median* reception probability is practically flat in the number
of concurrent senders, while the 10th percentile drops sharply — a small
fraction of receivers cannot maintain the conflict map under load.
"""

from conftest import run_once

from repro.analysis.stats import summarize
from repro.experiments.report import render_ht_density
from repro.experiments.runners import run_header_trailer_density


def test_fig19_ht_density(benchmark, testbed, scale, backend):
    result = run_once(
        benchmark, run_header_trailer_density, testbed, scale, backend=backend
    )
    print()
    print(render_ht_density(result))
    medians = {n: summarize(v).median for n, v in result.rates_by_n.items() if v}
    benchmark.extra_info["medians_by_n"] = {n: round(m, 2) for n, m in medians.items()}
    assert medians, "no data collected"
    # Median stays serviceable even at the highest sender counts measured.
    n_max = max(medians)
    assert medians[n_max] > 0.5
