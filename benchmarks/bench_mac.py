"""MAC hot-path benchmark: saturated pairs plus timer-registry churn (PR 9).

Three workloads sized for CI smoke runs, each reported as events/s:

* ``mac_dcf_pairs`` — two saturated DCF flows on the standard testbed: the
  contention loop (DIFS/slot/ACK timers through the named registry and the
  wheel-backed engine) dominates.
* ``mac_cmap_pairs`` — two saturated CMAP flows: the Fig. 6 sender loop,
  defer decisions against the conflict map, and the batched map sweep.
* ``mac_timer_churn`` — a pure engine/registry microbenchmark: thousands of
  named timers arming, rescheduling, and cancelling through the timer
  wheel with no radio underneath, so regressions in the timer API itself
  are not masked by PHY cost.

Emits a ``BENCH_mac_*.json`` trajectory point compatible with
``check_bench_regression.py``; the committed baseline lives at
``benchmarks/BENCH_mac_baseline_ci.json``.

Usage::

    python benchmarks/bench_mac.py --repeat 2 --out-dir bench-mac-out
    python benchmarks/bench_mac.py --write-baseline   # re-record baseline
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import perf  # noqa: E402
from repro.net.testbed import Testbed  # noqa: E402
from repro.network import Network, cmap_factory, dcf_factory  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402


def _run_pairs(testbed: Testbed, factory, duration: float) -> None:
    net = Network(testbed, run_seed=7)
    for n in (0, 1, 2, 3):
        net.add_node(n, factory)
    net.add_saturated_flow(0, 1)
    net.add_saturated_flow(2, 3)
    result = net.run(duration=duration, warmup=duration / 4.0)
    delivered = sum(f.delivered_unique for f in result.sink.flow_list())
    assert delivered > 0, "benchmark network moved no traffic"


def bench_timer_churn(
    repeat: int,
    timers: int = 64,
    ticks: int = 60000,
    wheel: bool | None = None,
):
    """Pure timer churn: named periodic timers + a cancel/re-arm storm.

    ``wheel`` overrides ``REPRO_TIMER_WHEEL`` for the measurement (None =
    inherit the environment); the engine reads the variable per-Simulator,
    so one process can interleave both layouts back to back."""
    from repro.mac.base import TimerRegistry
    from repro.sim.engine import WHEEL_ENV_VAR

    def build_and_run() -> Simulator:
        sim = Simulator()
        reg = TimerRegistry(sim)
        period = 1e-3

        def noop() -> None:
            pass

        def tick(idx: int) -> None:
            # Re-arm self (handle reuse) and harass a neighbour with a
            # cancel + re-arm pair — the storm the registry must make O(1).
            # The shared noop matches MAC idiom (callbacks bound once at
            # init), keeping the neighbour re-arm on the reuse fast path.
            reg.arm(("t", idx), period, tick, idx)
            other = (idx * 7 + 1) % timers
            reg.cancel(("n", other))
            reg.arm(("n", other), period / 2, noop)

        for i in range(timers):
            reg.arm(("t", i), period * (i + 1) / timers, tick, i)
        sim.run(until=ticks * period / timers)
        return sim

    prev = os.environ.get(WHEEL_ENV_VAR)
    if wheel is not None:
        os.environ[WHEEL_ENV_VAR] = "1" if wheel else "0"
    try:
        best = None
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            sim = build_and_run()
            wall = time.perf_counter() - t0
            bench = _churn_bench(sim, wall)
            if best is None or bench.wall_seconds < best.wall_seconds:
                best = bench
        return best
    finally:
        if wheel is not None:
            if prev is None:
                os.environ.pop(WHEEL_ENV_VAR, None)
            else:
                os.environ[WHEEL_ENV_VAR] = prev


def _churn_bench(sim: Simulator, wall: float) -> "perf.FigureBench":
    return perf.FigureBench(
        figure="mac_timer_churn",
        wall_seconds=round(wall, 4),
        run_wall_seconds=round(wall, 4),
        events=sim.events_processed,
        trials=1,
        sim_seconds=sim.now,
        events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
        core_events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
        trials_per_sec=1.0 / wall if wall > 0 else 0.0,
    )


def bench_wheel_ab(
    timers: int, ticks: int = 60000, rounds: int = 3
) -> dict:
    """Interleaved wheel-on/wheel-off churn A/B at ``timers`` timers.

    Runs the two layouts strictly alternated (round-for-round, same
    process) so co-tenant throughput drift hits both sides equally; keeps
    the best observation per side — the PR 9 methodology, applied to the
    N>=400 scale its bench flag deferred."""
    best = {"on": None, "off": None}
    for _ in range(max(1, rounds)):
        for mode, wheel in (("off", False), ("on", True)):
            bench = bench_timer_churn(1, timers=timers, ticks=ticks,
                                      wheel=wheel)
            if (
                best[mode] is None
                or bench.events_per_sec > best[mode].events_per_sec
            ):
                best[mode] = bench
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=2, help="best-of runs")
    parser.add_argument("--duration", type=float, default=12.0,
                        help="simulated seconds per saturated-pair workload")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out-dir", default=".")
    parser.add_argument(
        "--baseline",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "BENCH_mac_baseline_ci.json",
        ),
    )
    parser.add_argument("--write-baseline", action="store_true")
    parser.add_argument("--wheel-ab", type=int, default=None, metavar="N",
                        help="run ONLY the interleaved wheel-on/off churn "
                             "A/B at N timers (the N>=400 measurement "
                             "BENCH_pr9_mac.json deferred) and exit")
    parser.add_argument("--wheel-rounds", type=int, default=3,
                        help="interleaved rounds per side for --wheel-ab")
    parser.add_argument("--churn-ticks", type=int, default=60000,
                        help="tick budget for the churn workloads")
    args = parser.parse_args(argv)

    if args.wheel_ab is not None:
        best = bench_wheel_ab(args.wheel_ab, ticks=args.churn_ticks,
                              rounds=args.wheel_rounds)
        for mode in ("off", "on"):
            b = best[mode]
            print(f"wheel={mode:<3} N={args.wheel_ab:<5} "
                  f"{b.wall_seconds:6.3f}s wall  {b.events:>9} events  "
                  f"{b.events_per_sec:>9.0f} ev/s")
        ratio = best["off"].events_per_sec / best["on"].events_per_sec
        print(f"wheel-off/wheel-on: {ratio:.3f}x")
        return 0

    testbed = Testbed(seed=args.seed)
    testbed.links  # force the O(N^2) census into setup, not the timing

    results = []
    for name, factory in (
        ("mac_dcf_pairs", dcf_factory(True, True)),
        ("mac_cmap_pairs", cmap_factory()),
    ):
        bench = perf.bench_figure(
            name,
            lambda f=factory: _run_pairs(testbed, f, args.duration),
            repeat=args.repeat,
        )
        results.append(bench)
        print(
            f"{name:<16} {bench.wall_seconds:6.2f}s wall  "
            f"{bench.events:>9} events  {bench.events_per_sec:>9.0f} ev/s"
        )

    churn = bench_timer_churn(args.repeat)
    results.append(churn)
    print(
        f"{'mac_timer_churn':<16} {churn.wall_seconds:6.2f}s wall  "
        f"{churn.events:>9} events  {churn.events_per_sec:>9.0f} ev/s"
    )

    if args.write_baseline:
        payload = perf.bench_payload(results, "smoke", args.seed)
        path = perf.write_bench_file(
            payload,
            os.path.dirname(args.baseline) or ".",
            os.path.basename(args.baseline),
        )
    else:
        baseline = perf.load_bench_file(args.baseline)
        payload = perf.bench_payload(results, "smoke", args.seed, baseline)
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        path = perf.write_bench_file(
            payload, args.out_dir, f"BENCH_mac_{stamp}.json"
        )
        speedups = payload.get("speedup_events_per_sec")
        if speedups:
            for name, ratio in sorted(speedups.items()):
                print(f"  {name}: {ratio:.2f}x vs committed baseline")
    print(f"[wrote {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
