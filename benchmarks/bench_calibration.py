"""§4.2 calibration: single-link CMAP vs 802.11 throughput.

Paper: CMAP 5.04 Mb/s vs 802.11 5.07 Mb/s at the 6 Mb/s rate — N_vpkt = 32
makes the software MAC comparable to hardware 802.11.
"""

from conftest import run_once

from repro.experiments.report import render_calibration
from repro.experiments.runners import run_single_link_calibration


def test_single_link_calibration(benchmark, testbed, scale, backend):
    result = run_once(
        benchmark, run_single_link_calibration, testbed, scale, backend=backend
    )
    print()
    print(render_calibration(result))
    benchmark.extra_info["cmap_mbps"] = round(result.cmap_mbps, 3)
    benchmark.extra_info["dcf_mbps"] = round(result.dcf_mbps, 3)
    # Both MACs must land near the paper's ~5 Mb/s operating point.
    assert 4.0 < result.cmap_mbps < 6.5
    assert 4.0 < result.dcf_mbps < 6.5
    # And within ~15 % of each other (the paper engineered them comparable).
    assert abs(result.cmap_mbps - result.dcf_mbps) / result.dcf_mbps < 0.2
