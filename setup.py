"""Setup shim: enables `pip install -e . --no-use-pep517` on offline hosts
where the `wheel` package (required for PEP 660 editable installs) is absent.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
